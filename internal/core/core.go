// Package core is the public façade of the library: two high-level
// pipelines covering the paper's two contributions, each available
// both as one-shot calls and as a concurrent, frame-overlapped stream.
//
// ParticlePipeline (§2) — beam-dynamics particle data:
//
//	sim → snapshot frames → octree partition → hybrid extraction →
//	hybrid rendering (low-res volume + full-res halo points under
//	inverse-linked transfer functions)
//
// FieldPipeline (§3) — time-domain electromagnetic field data:
//
//	cavity mesh → FDTD solve → density-proportional field-line
//	seeding → self-orienting-surface rendering with perceptual cues
//
// # Streaming execution
//
// The paper's terascale workflow is a chain of separate programs run
// over hundreds of time-step frames. StreamFrames and StreamSolve
// express those chains on the internal/pipeline stage engine: each
// stage runs on its own goroutines connected by bounded channels, so
// frame N+1 partitions while frame N extracts and frame N-1 renders,
// and per-stage worker counts add frame-level parallelism within a
// stage. Output arrives in frame order and — for equal per-stage
// configurations — is bit-identical to the serial path. The one-shot
// methods (ProcessFrame) are thin wrappers over a one-frame stream.
//
// Frames enter a stream through a FrameSource: live simulation
// snapshots (SimSource), in-memory frames (FrameSliceSource), or
// pario frame files (FrameFileSource); the partition/extract/render
// commands and the time-series benchmarks all drive this same entry
// point.
//
// Every stage is also available directly from its own package for
// callers that need finer control; the pipelines wire the defaults the
// experiments use.
package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/beam"
	"repro/internal/emsim"
	"repro/internal/fieldline"
	"repro/internal/hexmesh"
	"repro/internal/hybrid"
	"repro/internal/octree"
	"repro/internal/render"
	"repro/internal/seeding"
	"repro/internal/sos"
	"repro/internal/vec"
	"repro/internal/volren"
)

// ParticlePipeline runs the §2 hybrid-visualization pipeline.
type ParticlePipeline struct {
	Sim     beam.Config
	Tree    octree.Config
	Extract hybrid.ExtractConfig
	// Axes selects the 3-D plot type, e.g. {AxisX, AxisY, AxisZ} or the
	// phase plot {AxisX, AxisPX, AxisY} of Fig 1.
	Axes [3]beam.Axis
}

// NewParticlePipeline returns a pipeline with the defaults used by the
// experiments: n particles, level-8 octree, 64^3 hybrid volume, a
// point budget of n/10, and the spatial (x, y, z) plot.
func NewParticlePipeline(n int) *ParticlePipeline {
	return &ParticlePipeline{
		Sim:     beam.DefaultConfig(n),
		Tree:    octree.DefaultConfig(),
		Extract: hybrid.ExtractConfig{VolumeRes: 64, Budget: int64(n / 10)},
		Axes:    [3]beam.Axis{beam.AxisX, beam.AxisY, beam.AxisZ},
	}
}

// NewSim constructs the underlying beam simulation.
func (p *ParticlePipeline) NewSim() (*beam.Sim, error) { return beam.NewSim(p.Sim) }

// Partition projects a frame onto the pipeline's axes and builds the
// octree — the paper's partitioning program.
func (p *ParticlePipeline) Partition(f beam.Frame) (*octree.Tree, error) {
	pts := make([]vec.V3, f.E.Len())
	p.project(f.E, pts)
	return octree.Build(pts, p.Tree)
}

// Hybrid extracts the hybrid representation from a partitioned tree —
// the paper's extraction program.
func (p *ParticlePipeline) Hybrid(t *octree.Tree) (*hybrid.Representation, error) {
	return hybrid.Extract(t, p.Extract)
}

// ProcessFrame runs partition + extraction on one frame. It is a thin
// wrapper over the streaming path: a one-frame stream through the same
// stage chain StreamFrames runs, so the two cannot drift apart.
func (p *ParticlePipeline) ProcessFrame(f beam.Frame) (*hybrid.Representation, error) {
	s := p.StreamFrames(context.Background(), FrameSliceSource(f), StreamOptions{})
	var rep *hybrid.Representation
	for r := range s.Out {
		rep = r.Rep
	}
	if err := s.Wait(); err != nil {
		return nil, err
	}
	if rep == nil {
		return nil, fmt.Errorf("core: stream produced no frame")
	}
	return rep, nil
}

// ConvertPlotType re-partitions already-partitioned data under a new
// plot type — the feature §2.3 describes as "possible (although not
// yet implemented)": because the partitioned representation holds all
// the particle data (the tree's OrigIndex recovers each particle's
// full six coordinates), the original unordered file can be discarded
// and any other 3-D plot re-keyed from the partitioned data alone.
func ConvertPlotType(t *octree.Tree, e *beam.Ensemble, newAxes [3]beam.Axis, cfg octree.Config) (*octree.Tree, error) {
	if len(t.OrigIndex) != e.Len() {
		return nil, fmt.Errorf("core: tree holds %d particles, ensemble %d", len(t.OrigIndex), e.Len())
	}
	// Reconstruct the full 6-D particle set in partitioned order — the
	// layout the paper's two-part file stores — then project onto the
	// new axes. Walking t.OrigIndex is the in-memory equivalent of
	// reading the partitioned particle file sequentially.
	pts := make([]vec.V3, len(t.OrigIndex))
	for i, oi := range t.OrigIndex {
		pts[i] = e.Point3(int(oi), newAxes)
	}
	nt, err := octree.Build(pts, cfg)
	if err != nil {
		return nil, err
	}
	// Build's OrigIndex refers to the partitioned-order input slice;
	// compose with the source tree's mapping so the converted tree's
	// indices keep referring to the original frame.
	for i, pi := range nt.OrigIndex {
		nt.OrigIndex[i] = t.OrigIndex[pi]
	}
	return nt, nil
}

// DefaultTF builds the viewer's default transfer-function pair for a
// representation. It is hybrid.DefaultTF, re-exported so façade
// callers keep a one-stop API.
func DefaultTF(rep *hybrid.Representation) (*hybrid.LinkedTF, error) {
	return hybrid.DefaultTF(rep)
}

// LineCloudRep flattens traced field lines into a hybrid
// representation: every line sample becomes a halo point whose density
// is the local field strength normalized to the frame maximum,
// OrigIndex records the owning line (so a viewer can style per line),
// and the volume is the splatted sample density. It is the wire form
// StreamSolve publishes into a FrameSink, letting the remote service
// live-monitor a field solve with the same protocol and viewer the
// particle runs use.
func LineCloudRep(bounds vec.AABB, volumeRes int, results ...*seeding.Result) (*hybrid.Representation, error) {
	if volumeRes < 2 {
		return nil, fmt.Errorf("core: line cloud volume resolution %d too small", volumeRes)
	}
	var n int
	maxStrength := 0.0
	for _, res := range results {
		for _, l := range res.Lines {
			n += l.NumPoints()
			for _, s := range l.Strengths {
				if s > maxStrength {
					maxStrength = s
				}
			}
		}
	}
	// PointDensity is normalized to [0,1] below, so the representation's
	// density scale is 1 — Threshold/MaxLeafD must stay a valid [0,1]
	// boundary for DefaultTF regardless of the raw field units.
	rep := &hybrid.Representation{
		Bounds:       bounds,
		Threshold:    1,
		MaxLeafD:     1,
		Points:       make([]vec.V3, 0, n),
		PointDensity: make([]float32, 0, n),
		OrigIndex:    make([]int64, 0, n),
	}
	norm := 0.0
	if maxStrength > 0 {
		norm = 1 / maxStrength
	}
	line := int64(0)
	for _, res := range results {
		for _, l := range res.Lines {
			for i, p := range l.Points {
				rep.Points = append(rep.Points, p)
				rep.PointDensity = append(rep.PointDensity, float32(l.Strengths[i]*norm))
				rep.OrigIndex = append(rep.OrigIndex, line)
			}
			line++
		}
	}
	vol, err := hybrid.Splat(rep.Points, bounds, volumeRes, volumeRes, volumeRes, 0)
	if err != nil {
		return nil, err
	}
	vol.Normalize()
	rep.Volume = vol
	return rep, nil
}

// RenderFrame renders a hybrid representation from the given view
// direction into a fresh w x h framebuffer, returning the frame and
// the renderer stats. The point pass runs on the tile-binned parallel
// rasterizer (render.DrawPointBatch) and the volume pass on the
// parallel ray caster; both are deterministic at any worker count.
func RenderFrame(rep *hybrid.Representation, tf *hybrid.LinkedTF, w, h int, viewDir vec.V3) (*render.Framebuffer, *render.Rasterizer, *volren.Renderer, error) {
	return volren.RenderStill(rep, tf, w, h, viewDir)
}

// FieldPipeline runs the §3 field-line visualization pipeline.
type FieldPipeline struct {
	Cavity  hexmesh.CavityConfig
	Solver  func(m *hexmesh.Mesh, cav hexmesh.CavityConfig) emsim.Config
	Seeding seeding.Config

	mesh *hexmesh.Mesh
	sim  *emsim.Sim
}

// NewFieldPipeline returns a pipeline over the 3-cell structure of
// Figs 6-8 at the given lattice resolution with a budget of lines.
func NewFieldPipeline(cellsPerRadius, lines int) *FieldPipeline {
	return &FieldPipeline{
		Cavity: hexmesh.DefaultCavity(cellsPerRadius),
		Solver: emsim.DefaultConfig,
		Seeding: seeding.Config{
			TotalLines: lines,
			Trace:      fieldline.Config{Step: 0, MaxSteps: 600, MinMag: 0},
			Seed:       2002,
		},
	}
}

// Mesh builds (and caches) the cavity mesh.
func (p *FieldPipeline) Mesh() (*hexmesh.Mesh, error) {
	if p.mesh == nil {
		m, err := hexmesh.BuildCavity(p.Cavity)
		if err != nil {
			return nil, err
		}
		p.mesh = m
	}
	return p.mesh, nil
}

// ensureSim builds (and caches) the mesh and solver.
func (p *FieldPipeline) ensureSim() (*emsim.Sim, error) {
	m, err := p.Mesh()
	if err != nil {
		return nil, err
	}
	if p.sim == nil {
		sim, err := emsim.New(p.Solver(m, p.Cavity))
		if err != nil {
			return nil, err
		}
		p.sim = sim
	}
	return p.sim, nil
}

// Solve builds the solver (cached) and advances it the given number of
// drive periods, returning a field snapshot.
func (p *FieldPipeline) Solve(periods float64) (*emsim.FieldFrame, error) {
	sim, err := p.ensureSim()
	if err != nil {
		return nil, err
	}
	sim.AdvancePeriods(periods)
	return sim.Snapshot(), nil
}

// Sim exposes the cached solver (nil before the first Solve).
func (p *FieldPipeline) Sim() *emsim.Sim { return p.sim }

// TraceE seeds and integrates electric field lines over a snapshot
// using the paper's density-proportional strategy.
func (p *FieldPipeline) TraceE(frame *emsim.FieldFrame) (*seeding.Result, error) {
	m, err := p.Mesh()
	if err != nil {
		return nil, err
	}
	cfg := p.Seeding
	if cfg.Trace.Step == 0 {
		cfg.Trace.Step = m.MinSpacing() / 2
	}
	if cfg.Trace.MinMag == 0 {
		cfg.Trace.MinMag = frame.MaxE() * 1e-4
	}
	cfg.Bidirectional = true // electric lines run surface to surface
	field := fieldline.FieldFunc(frame.SampleE)
	intensity := func(e int) float64 { return frame.ElementEMagnitude(e) }
	return seeding.SeedLines(m, field, intensity, cfg)
}

// TraceB seeds and integrates magnetic field lines over a snapshot.
// Magnetic lines have no endpoints — they close on themselves — so
// integration runs one-directionally with loop-closure detection.
func (p *FieldPipeline) TraceB(frame *emsim.FieldFrame) (*seeding.Result, error) {
	m, err := p.Mesh()
	if err != nil {
		return nil, err
	}
	cfg := p.Seeding
	if cfg.Trace.Step == 0 {
		cfg.Trace.Step = m.MinSpacing() / 2
	}
	maxB := 0.0
	for _, b := range frame.B {
		if l := b.Len(); l > maxB {
			maxB = l
		}
	}
	if cfg.Trace.MinMag == 0 {
		cfg.Trace.MinMag = maxB * 1e-4
	}
	cfg.Trace.CloseLoop = true
	cfg.Bidirectional = false
	field := fieldline.FieldFunc(frame.SampleB)
	intensity := func(e int) float64 { return frame.B[e].Len() }
	return seeding.SeedLines(m, field, intensity, cfg)
}

// RenderLines draws a set of field lines with the given technique from
// the given view direction.
func (p *FieldPipeline) RenderLines(lines []*fieldline.Line, tech sos.Technique,
	w, h int, viewDir vec.V3) (*render.Framebuffer, sos.Stats, error) {

	m, err := p.Mesh()
	if err != nil {
		return nil, sos.Stats{}, err
	}
	fb, err := render.NewFramebuffer(w, h)
	if err != nil {
		return nil, sos.Stats{}, err
	}
	cam, err := render.LookAtBounds(m.Bounds, viewDir, math.Pi/3, float64(w)/float64(h))
	if err != nil {
		return nil, sos.Stats{}, err
	}
	opts := sos.DefaultOptions(m.Bounds.Diagonal())
	opts.CutNormal = vec.New(0, 0, 1)
	opts.CutOffset = m.Bounds.Center().Z
	opts.FocusCenter = m.Bounds.Center()
	opts.FocusRadius = m.Bounds.Diagonal() / 6
	st := sos.RenderLines(fb, cam, lines, tech, opts)
	return fb, st, nil
}

// Verify is a quick integrity check across both pipelines, used by
// examples to fail fast on configuration errors.
func Verify() error {
	if _, err := beam.NewSim(beam.DefaultConfig(16)); err != nil {
		return fmt.Errorf("core: beam pipeline broken: %w", err)
	}
	if _, err := hexmesh.BuildCavity(hexmesh.DefaultCavity(6)); err != nil {
		return fmt.Errorf("core: field pipeline broken: %w", err)
	}
	return nil
}
