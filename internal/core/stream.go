package core

import (
	"context"
	"fmt"
	"math"
	"strings"

	"repro/internal/beam"
	"repro/internal/emsim"
	"repro/internal/hybrid"
	"repro/internal/octree"
	"repro/internal/pario"
	"repro/internal/pipeline"
	"repro/internal/remote"
	"repro/internal/render"
	"repro/internal/seeding"
	"repro/internal/sos"
	"repro/internal/vec"
	"repro/internal/volren"
)

// FrameSource feeds particle frames into a stream: simulation
// snapshots, an in-memory slice, or pario frame files. emit returns
// false once the stream is cancelled; the source should then stop.
type FrameSource func(ctx context.Context, emit func(beam.Frame) bool) error

// SimSource captures nFrames snapshots from sim, advancing
// periodsPerFrame lattice periods before each capture. The simulation
// steps serially on the source goroutine, so frame N+1 simulates while
// frame N flows through the downstream stages.
func SimSource(sim *beam.Sim, nFrames, periodsPerFrame int) FrameSource {
	return func(ctx context.Context, emit func(beam.Frame) bool) error {
		for i := 0; i < nFrames; i++ {
			if ctx.Err() != nil {
				return nil
			}
			sim.RunPeriods(periodsPerFrame)
			if !emit(sim.Snapshot()) {
				return nil
			}
		}
		return nil
	}
}

// FrameSliceSource emits the given frames in order.
func FrameSliceSource(frames ...beam.Frame) FrameSource {
	return func(_ context.Context, emit func(beam.Frame) bool) error {
		for _, f := range frames {
			if !emit(f) {
				return nil
			}
		}
		return nil
	}
}

// FrameFileSource reads pario frame files (.acpf) in order, so file
// I/O overlaps the compute stages downstream.
func FrameFileSource(paths ...string) FrameSource {
	return func(_ context.Context, emit func(beam.Frame) bool) error {
		for _, path := range paths {
			f, err := pario.ReadFrameFile(path)
			if err != nil {
				return err
			}
			if !emit(f) {
				return nil
			}
		}
		return nil
	}
}

// FrameSink is the write side of the visualization service: a
// streaming pipeline publishes each extracted hybrid frame here, in
// frame order, so remote viewers watch a running simulation (in-situ
// mode). remote.LiveRing satisfies it; so does any collector. Publish
// errors fail the stream.
type FrameSink interface {
	Publish(index int, rep *hybrid.Representation) error
}

// LiveRing is the FrameSink the in-situ examples and CLIs publish
// into.
var _ FrameSink = (*remote.LiveRing)(nil)

// remoteExtractExecutor is the pipeline.StageExecutor that places the
// partition+extract pair on a remote worker: the frame's projected
// point set goes over the wire (CRC-framed, configs included), the
// hybrid representation comes back, bit-identical to the local stage
// pair for the same configs. Projection scratch recycles through the
// stream's slice pool and the wire payloads through the remote
// package's buffer pool, so a steady-state distributed stream
// allocates like the local one.
type remoteExtractExecutor struct {
	fl         *remote.Fleet
	p          *ParticlePipeline
	proj       *pipeline.SlicePool[vec.V3]
	keepFrames bool
}

// Apply implements pipeline.StageExecutor; it is called from up to
// Workers goroutines, keeping Window frames in flight per healthy
// fleet member. A lost attempt is re-dispatched by the fleet beneath
// the stage's sequence tagging, so failover never disturbs frame
// order or content.
func (x *remoteExtractExecutor) Apply(ctx context.Context, r StreamResult) (StreamResult, error) {
	pts := x.proj.Get(r.Frame.E.Len())
	x.p.project(r.Frame.E, *pts)
	rep, err := x.fl.ComputeExtract(ctx, *pts, x.p.Tree, x.p.Extract)
	x.proj.Put(pts)
	if err != nil {
		return r, fmt.Errorf("frame %d: %w", r.Index, err)
	}
	r.Rep = rep
	if !x.keepFrames {
		r.Frame.E = nil
	}
	return r, nil
}

// localExtractExecutor fuses the partition+extract pair into one
// in-process executor — the local twin of remoteExtractExecutor,
// computing bit-identical hybrid representations for the same configs.
// It is the home side of a placement-switchable extract stage: the
// balancer flips frames between this and the fleet executor at frame
// boundaries without the output changing by a byte.
type localExtractExecutor struct {
	p          *ParticlePipeline
	proj       *pipeline.SlicePool[vec.V3]
	keepFrames bool
}

// Apply implements pipeline.StageExecutor.
func (x *localExtractExecutor) Apply(_ context.Context, r StreamResult) (StreamResult, error) {
	pts := x.proj.Get(r.Frame.E.Len())
	x.p.project(r.Frame.E, *pts)
	t, err := octree.Build(*pts, x.p.Tree)
	x.proj.Put(pts)
	if err != nil {
		return r, fmt.Errorf("frame %d: %w", r.Index, err)
	}
	rep, err := hybrid.Extract(t, x.p.Extract)
	if err != nil {
		return r, fmt.Errorf("frame %d: %w", r.Index, err)
	}
	r.Rep = rep
	if !x.keepFrames {
		r.Frame.E = nil
	}
	return r, nil
}

// RenderOptions appends a render stage to a particle stream. Each
// frame's point pass runs on the tile-binned parallel rasterizer, so
// the stage parallelizes along two axes: Workers concurrent frames,
// each splatting its batch across all cores.
type RenderOptions struct {
	Width, Height int     // framebuffer size (default 512x512)
	ViewDir       vec.V3  // view direction (default {0.4, 0.3, 1})
	PointScale    float64 // point splat radius in pixels (default 1.5)
	Opaque        bool    // draw points fully opaque (Fig 4 style)
	Workers       int     // concurrent frames in the render stage

	// Partitions is the number of sub-volume partitions each frame's
	// point pass splits into when StreamOptions.RenderAddrs places
	// rendering on a fleet (0 = one per fleet member). The composited
	// frame is bit-identical at every partition count; more partitions
	// than members smooths the striping when sub-volumes have uneven
	// screen footprints. Ignored for local rendering.
	Partitions int
}

func (o RenderOptions) withDefaults() RenderOptions {
	if o.Width <= 0 {
		o.Width = 512
	}
	if o.Height <= 0 {
		o.Height = 512
	}
	if o.ViewDir == (vec.V3{}) {
		o.ViewDir = vec.New(0.4, 0.3, 1)
	}
	if o.PointScale <= 0 {
		o.PointScale = 1.5
	}
	return o
}

// StreamOptions sizes the stages of a particle frame stream. The zero
// value gives a fully serial stream (one frame in flight per stage)
// that still overlaps stages: with three pipeline stages, three
// successive frames are in flight at once.
type StreamOptions struct {
	PartitionWorkers int // concurrent frames in the partition stage (0 = 1)
	ExtractWorkers   int // concurrent frames in the extract stage (0 = 1)
	Buffer           int // inter-stage channel depth in frames (0 = 1)

	KeepFrames  bool // retain each frame's ensemble in its result
	KeepTrees   bool // retain each frame's octree in its result
	SkipExtract bool // stop after partition (the paper's partitioning program)

	// Render, when non-nil, appends a render stage. Rendering needs a
	// hybrid representation, so Render is incompatible with SkipExtract;
	// StreamFrames rejects the combination.
	Render *RenderOptions

	// Sink, when non-nil, appends a publish stage after extraction:
	// every hybrid frame is pushed into the sink in frame order (the
	// in-situ mode — publish into a remote.LiveRing served by a
	// remote.Service and clients watch the run live). Publish must not
	// block on consumers: the service's per-subscriber send queues (and
	// the ring's latest-wins eviction) absorb slow viewers, so a stalled
	// remote client never backpressures this pipeline. Incompatible
	// with SkipExtract.
	Sink FrameSink

	// ExtractAddr, when non-empty, places the heavy per-frame compute —
	// octree partition plus hybrid extraction — on a remote worker
	// process (cmd/vizworker, or an in-process remote.Worker) at that
	// address: the paper's split of simulation and visualization
	// compute across machines. The stage projects each frame locally
	// (cheap), ships the point set over the service protocol's Compute
	// verb, and receives the hybrid representation back, bit-identical
	// to running the same configs locally. ExtractWorkers frames stay
	// in flight on one multiplexed connection, overlapping wide-area
	// round-trips; a dial failure, worker crash, or cancellation fails
	// the stream through the usual first-error drain. Incompatible with
	// SkipExtract and KeepTrees (the tree only ever exists on the
	// worker). ExtractAddr is the one-element case of ExtractAddrs;
	// setting both is an error.
	ExtractAddr string

	// ExtractAddrs places extraction on a fleet of workers: frames
	// stripe across the healthy members (ExtractWorkers in flight per
	// worker), a worker that fails or hangs mid-frame forfeits its
	// frames to surviving members (bit-identical re-dispatch, order
	// preserved by the stage reorderer), ejected workers are
	// re-probed and rejoin, and the stream fails only when no worker
	// can serve a frame within the retry policy. Every member must
	// advertise the hybrid-extraction kernel; a mis-provisioned
	// member fails the stream at startup. Same incompatibilities as
	// ExtractAddr.
	ExtractAddrs []string

	// ExtractPolicy optionally tunes the extraction fleet's
	// robustness machinery — per-attempt timeout, retry policy,
	// ejection threshold, probe interval, bandwidth model, custom
	// dialer. Kernel and Window are owned by the stream (the kernel
	// is always hybrid extraction; the window is ExtractWorkers). nil
	// means defaults.
	ExtractPolicy *remote.FleetOptions

	// RenderAddrs places each frame's point pass on a fleet of render
	// workers — sort-last distributed rendering. The stage splits the
	// frame's hybrid point set along the octree partition into
	// Render.Partitions contiguous sub-volumes, fans them across the
	// fleet's render.partial.v1 kernels (striping, retry/failover and
	// per-member windows exactly as ExtractAddrs), and composites the
	// returned RGBA+depth partials back in partition order before
	// ray-casting the density volume locally over the merged image.
	// The composited frame is bit-identical to the single-node render
	// at every partition count, every worker count, and across a
	// worker lost mid-frame. Requires Render; every member must
	// advertise the render kernel.
	RenderAddrs []string

	// RenderPolicy optionally tunes the render fleet the way
	// ExtractPolicy tunes the extraction fleet. Kernel and Window are
	// owned by the stream (always render.partial.v1; the window is
	// Render.Workers). nil means defaults.
	RenderPolicy *remote.FleetOptions

	// Balance, when non-nil, runs the stream self-balancing: the
	// compute stages (partition, extract, local render) become elastic
	// and a pipeline.Balancer periodically moves workers from
	// over-provisioned stages to the measured bottleneck within a
	// global budget (default: the sum of the configured worker
	// counts). The configured PartitionWorkers/ExtractWorkers/
	// Render.Workers become starting points instead of a contract.
	// When extract addresses are also set, extraction runs a
	// placement-switchable stage: it starts on the local fused
	// partition+extract executor and the balancer flips it to the
	// fleet when the local side saturates (and back when the remote
	// path degrades), always at a frame boundary. Output order and
	// content are unchanged by any rebalance or flip — results stay
	// bit-identical to the serial path.
	Balance *BalanceOptions
}

// BalanceOptions tunes a self-balancing stream. The embedded
// pipeline.BalancerOptions zero value gives the default thresholds and
// cadence; Budget 0 means the sum of the stream's configured worker
// counts across elastic stages.
type BalanceOptions struct {
	pipeline.BalancerOptions

	// MaxStageWorkers caps any single elastic stage (0 = the worker
	// budget, letting one stage absorb the whole budget if the
	// measurements call for it).
	MaxStageWorkers int
}

// StreamResult is the per-frame output of StreamFrames, emitted in
// frame order regardless of per-stage worker counts.
type StreamResult struct {
	Index int
	Frame beam.Frame             // Frame.E is nil unless KeepFrames
	Tree  *octree.Tree           // nil unless KeepTrees or SkipExtract
	Rep   *hybrid.Representation // nil when SkipExtract
	FB    *render.Framebuffer    // nil unless Render
	Rast  *render.Rasterizer     // point-pass stats; nil when the point pass ran on a render fleet
	VR    *volren.Renderer       // volume-pass stats, when rendered
}

// ParticleStream is a running particle frame stream: range over Out
// (frames arrive in order), then Wait; Cancel aborts mid-frame.
// Snapshot (via the embedded Stream) exposes the per-stage telemetry
// table; Balancer is non-nil when StreamOptions.Balance was set.
type ParticleStream struct {
	*pipeline.Stream[StreamResult]
	fbs *pipeline.FreeList[*render.Framebuffer]

	// Balancer is the stream's self-balancing loop (nil unless
	// StreamOptions.Balance): its Decisions method is the audit log of
	// every rebalance and placement flip applied to this stream.
	Balancer *pipeline.Balancer
}

// RecycleFB returns a rendered framebuffer to the stream's free list
// once the caller is done with it, so long streams reuse a bounded set
// of framebuffers. Only framebuffers received from this stream's
// results may be recycled.
func (s *ParticleStream) RecycleFB(fb *render.Framebuffer) {
	if fb != nil && s.fbs != nil {
		s.fbs.Put(fb)
	}
}

// StreamFrames runs the §2 chain — simulate → project → octree
// partition → hybrid extract → (optionally) render — as a staged
// stream over the frames src emits. Stages are connected by bounded
// channels, so while frame N+1 is being partitioned, frame N is being
// extracted and frame N-1 rendered; per-stage worker counts add
// frame-level parallelism within a stage. Output order always matches
// frame order and, for equal per-stage configurations, the results are
// bit-identical to the serial one-shot path.
func (p *ParticlePipeline) StreamFrames(ctx context.Context, src FrameSource, opts StreamOptions) *ParticleStream {
	pl := pipeline.New(ctx)
	fail := func(err error) *ParticleStream {
		pl.Fail(err)
		out := make(chan StreamResult)
		close(out)
		return &ParticleStream{Stream: pipeline.NewStream(pl, out)}
	}
	if opts.SkipExtract && (opts.Render != nil || opts.Sink != nil) {
		return fail(fmt.Errorf("core: StreamOptions.Render/Sink require extraction; unset SkipExtract"))
	}
	if opts.ExtractAddr != "" && len(opts.ExtractAddrs) > 0 {
		return fail(fmt.Errorf("core: set StreamOptions.ExtractAddr or ExtractAddrs, not both"))
	}
	if len(opts.RenderAddrs) > 0 && opts.Render == nil {
		return fail(fmt.Errorf("core: StreamOptions.RenderAddrs places rendering remotely; set Render"))
	}
	addrs := opts.ExtractAddrs
	if opts.ExtractAddr != "" {
		addrs = []string{opts.ExtractAddr}
	}
	if len(addrs) > 0 {
		if opts.SkipExtract {
			return fail(fmt.Errorf("core: StreamOptions.ExtractAddr places extraction remotely; unset SkipExtract"))
		}
		if opts.KeepTrees {
			return fail(fmt.Errorf("core: StreamOptions.KeepTrees is incompatible with ExtractAddr (the tree lives on the worker)"))
		}
	}
	buf := opts.Buffer
	if buf < 1 {
		buf = 1
	}
	// Resolve the documented worker defaults (0 = 1) here — the
	// pipeline engine rejects Workers <= 0 rather than guessing.
	partW := workersOr1(opts.PartitionWorkers)
	extW := workersOr1(opts.ExtractWorkers)
	renderW := 1
	if opts.Render != nil {
		renderW = workersOr1(opts.Render.Workers)
	}

	// Self-balancing bounds: the elastic stages share a worker budget
	// (default: the sum of their configured counts) and each may grow
	// to maxStage. The starting counts must sit inside the bounds, so
	// maxStage never drops below a configured count.
	var budget, maxStage int
	if opts.Balance != nil {
		if len(addrs) > 0 {
			budget = extW
		} else {
			budget = partW
			if !opts.SkipExtract {
				budget += extW
			}
		}
		if opts.Render != nil && len(opts.RenderAddrs) == 0 {
			budget += renderW
		}
		if opts.Balance.Budget > budget {
			budget = opts.Balance.Budget
		}
		maxStage = opts.Balance.MaxStageWorkers
		if maxStage <= 0 {
			maxStage = budget
		}
		for _, w := range []int{partW, extW, renderW} {
			if w > maxStage {
				maxStage = w
			}
		}
	}
	elastic := func(cfg pipeline.StageConfig) pipeline.StageConfig {
		if opts.Balance != nil {
			cfg.MinWorkers = 1
			cfg.MaxWorkers = maxStage
		}
		return cfg
	}

	// Build the worker fleet before starting any stage goroutine, so a
	// bad address or a mis-provisioned worker fails the stream without
	// leaving a source running. A single address is simply a
	// one-member fleet.
	var fleet *remote.Fleet
	if len(addrs) > 0 {
		fo := remote.FleetOptions{}
		if opts.ExtractPolicy != nil {
			fo = *opts.ExtractPolicy
		}
		fo.Kernel = remote.KernelHybridExtract
		fo.Window = extW
		if opts.Balance != nil {
			// The balancer may grow the switchable stage past its
			// starting count; size the per-member window to the stage's
			// ceiling so growth is not throttled at the fleet layer.
			fo.Window = maxStage
		}
		fl, err := remote.NewFleet(addrs, fo)
		if err != nil {
			return fail(fmt.Errorf("core: dialing extract worker %s: %w", strings.Join(addrs, ","), err))
		}
		fleet = fl
		pl.Defer(func() { fl.Close() })
	}

	// The render fleet builds up front for the same reason, checking
	// every member advertises the render kernel before a frame flows.
	var renderFleet *remote.Fleet
	if len(opts.RenderAddrs) > 0 {
		fo := remote.FleetOptions{}
		if opts.RenderPolicy != nil {
			fo = *opts.RenderPolicy
		}
		fo.Kernel = remote.KernelRenderPartial
		fo.Window = opts.Render.Workers
		if fo.Window < 1 {
			fo.Window = 1
		}
		fl, err := remote.NewFleet(opts.RenderAddrs, fo)
		if err != nil {
			return fail(fmt.Errorf("core: dialing render worker %s: %w", strings.Join(opts.RenderAddrs, ","), err))
		}
		renderFleet = fl
		pl.Defer(func() { fl.Close() })
	}

	// Source: number the frames as they arrive.
	frames := pipeline.Source(pl, buf, func(ctx context.Context, emit func(StreamResult) bool) error {
		i := 0
		return src(ctx, func(f beam.Frame) bool {
			r := StreamResult{Index: i, Frame: f}
			i++
			return emit(r)
		})
	})

	proj := pipeline.NewSlicePool[vec.V3]()
	var out <-chan StreamResult
	switch {
	case fleet != nil && opts.Balance != nil:
		// Placement-switchable extraction: the stage starts on the
		// local fused partition+extract executor and the balancer may
		// flip it to the fleet at a frame boundary when the local side
		// saturates (and back when the remote path degrades). Both
		// sides compute bit-identical representations, and the stage
		// reorderer is shared, so flips are invisible in the output.
		sw := pipeline.NewSwitchExec[StreamResult, StreamResult](
			&localExtractExecutor{p: p, proj: proj, keepFrames: opts.KeepFrames},
			&remoteExtractExecutor{fl: fleet, p: p, proj: proj, keepFrames: opts.KeepFrames})
		out = pipeline.MapExec(pl, frames,
			elastic(pipeline.StageConfig{Name: "extract", Workers: extW, Buf: buf}), sw)
	case fleet != nil:
		// Distributed placement: partition+extract fuse into one stage
		// whose executor ships each frame's projected point set to the
		// fleet and gets the hybrid representation back. ExtractWorkers
		// bounds the concurrent kernel runs (and memory) on each
		// worker — it is the fleet's per-member window — so the stage
		// runs ExtractWorkers × members dispatch goroutines to keep
		// every member's window fillable. Each in-flight frame overlaps
		// its WAN round-trip on the member's multiplexed connection;
		// the MapExec reorderer restores frame order exactly as it does
		// for the in-process pool, so fleet failover never reorders
		// output.
		out = pipeline.MapExec(pl, frames,
			pipeline.StageConfig{Name: "extract@" + strings.Join(addrs, ","), Workers: extW * len(addrs), Buf: buf},
			&remoteExtractExecutor{fl: fleet, p: p, proj: proj, keepFrames: opts.KeepFrames})
	default:
		// Partition: project the frame onto the pipeline's axes into a
		// recycled scratch buffer (octree.Build copies what it keeps),
		// then build the tree.
		trees := pipeline.Map(pl, frames,
			elastic(pipeline.StageConfig{Name: "partition", Workers: partW, Buf: buf}),
			func(_ context.Context, r StreamResult) (StreamResult, error) {
				pts := proj.Get(r.Frame.E.Len())
				p.project(r.Frame.E, *pts)
				t, err := octree.Build(*pts, p.Tree)
				proj.Put(pts)
				if err != nil {
					return r, fmt.Errorf("frame %d: %w", r.Index, err)
				}
				r.Tree = t
				if !opts.KeepFrames {
					r.Frame.E = nil
				}
				return r, nil
			})

		out = trees
		if !opts.SkipExtract {
			out = pipeline.Map(pl, out,
				elastic(pipeline.StageConfig{Name: "extract", Workers: extW, Buf: buf}),
				func(_ context.Context, r StreamResult) (StreamResult, error) {
					rep, err := hybrid.Extract(r.Tree, p.Extract)
					if err != nil {
						return r, fmt.Errorf("frame %d: %w", r.Index, err)
					}
					r.Rep = rep
					if !opts.KeepTrees {
						r.Tree = nil
					}
					return r, nil
				})
		}
	}

	if opts.Sink != nil {
		// Single worker: publishes land in frame order, which live
		// stores (remote.LiveRing) require.
		out = pipeline.Map(pl, out,
			pipeline.StageConfig{Name: "publish", Workers: 1, Buf: buf},
			func(_ context.Context, r StreamResult) (StreamResult, error) {
				if err := opts.Sink.Publish(r.Index, r.Rep); err != nil {
					return r, fmt.Errorf("frame %d: %w", r.Index, err)
				}
				return r, nil
			})
	}

	s := &ParticleStream{}
	if opts.Render != nil {
		ro := opts.Render.withDefaults()
		s.fbs = pipeline.NewFreeList(func() *render.Framebuffer {
			fb, err := render.NewFramebuffer(ro.Width, ro.Height)
			if err != nil {
				panic(err) // dims validated by withDefaults
			}
			return fb
		})
		if renderFleet != nil {
			// Sort-last distributed placement: each frame's point pass
			// splits into parts sub-volumes fanned across the fleet;
			// the partials composite back in partition order and the
			// volume pass runs locally over the merged image. Workers
			// frames overlap their fan-outs; within a frame the fleet's
			// striping and windows bound the per-member load.
			parts := ro.Partitions
			if parts < 1 {
				parts = len(opts.RenderAddrs)
			}
			fl := renderFleet
			out = pipeline.Map(pl, out,
				pipeline.StageConfig{Name: "render@" + strings.Join(opts.RenderAddrs, ","), Workers: renderW, Buf: buf},
				func(ctx context.Context, r StreamResult) (StreamResult, error) {
					fb := s.fbs.Get()
					fb.Clear(hybrid.RGBA{})
					vr, err := renderDistributed(ctx, fl, r.Rep, ro, parts, fb)
					if err != nil {
						s.fbs.Put(fb)
						return r, fmt.Errorf("frame %d: %w", r.Index, err)
					}
					r.FB, r.VR = fb, vr
					return r, nil
				})
		} else {
			aspect := float64(ro.Width) / float64(ro.Height)
			out = pipeline.Map(pl, out,
				elastic(pipeline.StageConfig{Name: "render", Workers: renderW, Buf: buf}),
				func(_ context.Context, r StreamResult) (StreamResult, error) {
					tf, err := DefaultTF(r.Rep)
					if err != nil {
						return r, fmt.Errorf("frame %d: %w", r.Index, err)
					}
					cam, err := render.LookAtBounds(r.Rep.Bounds, ro.ViewDir, math.Pi/3, aspect)
					if err != nil {
						return r, fmt.Errorf("frame %d: %w", r.Index, err)
					}
					fb := s.fbs.Get()
					fb.Clear(hybrid.RGBA{})
					rast, vr, err := volren.RenderHybrid(r.Rep, tf, fb, cam, ro.PointScale, ro.Opaque)
					if err != nil {
						s.fbs.Put(fb)
						return r, fmt.Errorf("frame %d: %w", r.Index, err)
					}
					r.FB, r.Rast, r.VR = fb, rast, vr
					return r, nil
				})
		}
	}
	if opts.Balance != nil {
		bo := opts.Balance.BalancerOptions
		if bo.Budget <= 0 {
			bo.Budget = budget
		}
		s.Balancer = pl.StartBalancer(bo)
	}
	s.Stream = pipeline.NewStream(pl, out)
	return s
}

// workersOr1 resolves the core façade's documented worker default: a
// zero or negative stage worker count means one worker.
func workersOr1(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

// project fills dst with the ensemble's points projected onto the
// pipeline's axes. len(dst) must equal e.Len().
func (p *ParticlePipeline) project(e *beam.Ensemble, dst []vec.V3) {
	for i := range dst {
		dst[i] = e.Point3(i, p.Axes)
	}
}

// FieldRenderOptions appends a render stage to a field stream.
type FieldRenderOptions struct {
	Technique     sos.Technique
	Width, Height int    // framebuffer size (default 512x512)
	ViewDir       vec.V3 // view direction (default {0.8, 0.45, 0.9})
	Workers       int    // concurrent frames in the render stage
}

func (o FieldRenderOptions) withDefaults() FieldRenderOptions {
	if o.Width <= 0 {
		o.Width = 512
	}
	if o.Height <= 0 {
		o.Height = 512
	}
	if o.ViewDir == (vec.V3{}) {
		o.ViewDir = vec.New(0.8, 0.45, 0.9)
	}
	return o
}

// FieldStreamOptions sizes the stages of a field-solve stream.
type FieldStreamOptions struct {
	Frames          int     // number of snapshots to emit
	PeriodsPerFrame float64 // drive periods advanced between snapshots
	TraceWorkers    int     // concurrent frames in the trace stage (0 = 1)
	TraceB          bool    // trace magnetic lines alongside electric
	Buffer          int     // inter-stage channel depth in frames (0 = 1)

	Render *FieldRenderOptions // non-nil appends a render stage

	// Sink, when non-nil, appends a publish stage after tracing: each
	// frame's traced lines are flattened into a compact hybrid
	// representation (LineCloudRep) and published in frame order, so
	// the same remote service that serves particle runs can
	// live-monitor a field solve.
	Sink FrameSink
	// SinkVolumeRes sizes the published line-cloud density volume
	// per axis (default 16).
	SinkVolumeRes int
}

// FieldStreamResult is the per-frame output of StreamSolve.
type FieldStreamResult struct {
	Index int
	Frame *emsim.FieldFrame
	E     *seeding.Result // electric field lines
	B     *seeding.Result // magnetic field lines (nil unless TraceB)
	FB    *render.Framebuffer
	Stats sos.Stats
}

// StreamSolve runs the §3 chain — FDTD solve → field-line seeding →
// (optionally) SOS rendering — as a staged stream: the solver advances
// frame N+1 on the source goroutine while frame N's lines integrate
// and frame N-1 renders. The solver itself is stateful and therefore
// serial; the trace and render stages take per-frame workers.
func (p *FieldPipeline) StreamSolve(ctx context.Context, opts FieldStreamOptions) (*pipeline.Stream[FieldStreamResult], error) {
	if opts.Frames <= 0 {
		return nil, fmt.Errorf("core: field stream needs Frames > 0, got %d", opts.Frames)
	}
	if opts.PeriodsPerFrame <= 0 {
		return nil, fmt.Errorf("core: field stream needs PeriodsPerFrame > 0, got %g", opts.PeriodsPerFrame)
	}
	// Build the mesh and solver up front so the concurrent stages only
	// ever read the cached copies.
	sim, err := p.ensureSim()
	if err != nil {
		return nil, err
	}
	buf := opts.Buffer
	if buf < 1 {
		buf = 1
	}

	pl := pipeline.New(ctx)
	frames := pipeline.Source(pl, buf, func(ctx context.Context, emit func(FieldStreamResult) bool) error {
		for i := 0; i < opts.Frames; i++ {
			if ctx.Err() != nil {
				return nil
			}
			sim.AdvancePeriods(opts.PeriodsPerFrame)
			if !emit(FieldStreamResult{Index: i, Frame: sim.Snapshot()}) {
				return nil
			}
		}
		return nil
	})

	lines := pipeline.Map(pl, frames,
		pipeline.StageConfig{Name: "trace", Workers: workersOr1(opts.TraceWorkers), Buf: buf},
		func(_ context.Context, r FieldStreamResult) (FieldStreamResult, error) {
			res, err := p.TraceE(r.Frame)
			if err != nil {
				return r, fmt.Errorf("frame %d: %w", r.Index, err)
			}
			r.E = res
			if opts.TraceB {
				if r.B, err = p.TraceB(r.Frame); err != nil {
					return r, fmt.Errorf("frame %d: %w", r.Index, err)
				}
			}
			return r, nil
		})

	out := lines
	if opts.Sink != nil {
		res := opts.SinkVolumeRes
		if res < 2 {
			res = 16
		}
		bounds := p.mesh.Bounds
		out = pipeline.Map(pl, out,
			pipeline.StageConfig{Name: "publish", Workers: 1, Buf: buf},
			func(_ context.Context, r FieldStreamResult) (FieldStreamResult, error) {
				results := []*seeding.Result{r.E}
				if r.B != nil {
					results = append(results, r.B)
				}
				rep, err := LineCloudRep(bounds, res, results...)
				if err != nil {
					return r, fmt.Errorf("frame %d: %w", r.Index, err)
				}
				if err := opts.Sink.Publish(r.Index, rep); err != nil {
					return r, fmt.Errorf("frame %d: %w", r.Index, err)
				}
				return r, nil
			})
	}
	if opts.Render != nil {
		ro := opts.Render.withDefaults()
		out = pipeline.Map(pl, out,
			pipeline.StageConfig{Name: "render", Workers: workersOr1(ro.Workers), Buf: buf},
			func(_ context.Context, r FieldStreamResult) (FieldStreamResult, error) {
				fb, st, err := p.RenderLines(r.E.Lines, ro.Technique, ro.Width, ro.Height, ro.ViewDir)
				if err != nil {
					return r, fmt.Errorf("frame %d: %w", r.Index, err)
				}
				r.FB, r.Stats = fb, st
				return r, nil
			})
	}
	return pipeline.NewStream(pl, out), nil
}
