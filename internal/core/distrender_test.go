package core

import (
	"context"
	"math"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/hybrid"
	"repro/internal/pipeline"
	"repro/internal/remote"
	"repro/internal/render"
	"repro/internal/vec"
)

// TestSplitPoints: cuts are ascending, cover the whole range at every
// partition count, and snap to density-change boundaries when one is
// near.
func TestSplitPoints(t *testing.T) {
	// 40 points in runs of 10: density changes at 10, 20, 30.
	density := make([]float32, 40)
	for i := range density {
		density[i] = float32(i / 10)
	}
	for _, parts := range []int{1, 2, 3, 4, 8, 40} {
		cuts := splitPoints(density, parts)
		if len(cuts) != parts+1 || cuts[0] != 0 || cuts[parts] != len(density) {
			t.Fatalf("parts=%d: cuts %v do not cover the range", parts, cuts)
		}
		for k := 1; k <= parts; k++ {
			if cuts[k] < cuts[k-1] {
				t.Fatalf("parts=%d: cuts %v not monotonic", parts, cuts)
			}
		}
	}
	// The even 4-way cuts (10, 20, 30) are already boundaries; a 2-way
	// cut at 20 is too. Both must land exactly there.
	if cuts := splitPoints(density, 4); cuts[1] != 10 || cuts[2] != 20 || cuts[3] != 30 {
		t.Errorf("4-way cuts %v, want boundary-aligned [0 10 20 30 40]", cuts)
	}
	// Uniform density: no boundary to snap to, cuts stay even.
	uniform := make([]float32, 30)
	if cuts := splitPoints(uniform, 3); cuts[1] != 10 || cuts[2] != 20 {
		t.Errorf("uniform cuts %v, want even [0 10 20 30]", cuts)
	}
	// Empty frame: all cuts zero, no panic.
	if cuts := splitPoints(nil, 3); cuts[3] != 0 {
		t.Errorf("empty cuts %v", cuts)
	}
}

func sameFrame(a, b *render.Framebuffer) bool {
	if a.W != b.W || a.H != b.H {
		return false
	}
	for i := range a.Color {
		if math.Float32bits(a.Color[i]) != math.Float32bits(b.Color[i]) {
			return false
		}
	}
	for i := range a.Depth {
		if math.Float32bits(a.Depth[i]) != math.Float32bits(b.Depth[i]) {
			return false
		}
	}
	return true
}

// TestStreamDistributedRenderBitIdentical is the tentpole acceptance
// test: a stream whose render stage fans sub-volume renders across a
// worker fleet must produce framebuffers bit-identical to the local
// render stage AND to the one-shot single-node RenderFrame, at every
// partition count.
func TestStreamDistributedRenderBitIdentical(t *testing.T) {
	p, frames := streamFixture(t, 3000)
	ro := RenderOptions{Width: 96, Height: 96, Workers: 2}

	// Local reference: FBs plus the reps for the RenderFrame check.
	var want []*render.Framebuffer
	var reps []*hybrid.Representation
	local := p.StreamFrames(context.Background(), FrameSliceSource(frames...), StreamOptions{
		Render: &ro,
	})
	for r := range local.Out {
		want = append(want, r.FB)
		reps = append(reps, r.Rep)
	}
	if err := local.Wait(); err != nil {
		t.Fatal(err)
	}

	// The stream's render stage must itself match the one-shot
	// single-node path before we compare the distributed one to it.
	tf, err := DefaultTF(reps[0])
	if err != nil {
		t.Fatal(err)
	}
	still, _, _, err := RenderFrame(reps[0], tf, ro.Width, ro.Height, vec.New(0.4, 0.3, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !sameFrame(want[0], still) {
		t.Fatal("local stream render differs from single-node RenderFrame")
	}

	w1 := startRenderWorker(t)
	w2 := startRenderWorker(t)
	for _, tc := range []struct {
		name       string
		addrs      []string
		partitions int
	}{
		{"1 worker, 1 partition", []string{w1.Addr()}, 1},
		{"1 worker, 4 partitions", []string{w1.Addr()}, 4},
		{"2 workers, 2 partitions", []string{w1.Addr(), w2.Addr()}, 0},
		{"2 workers, 8 partitions", []string{w1.Addr(), w2.Addr()}, 8},
	} {
		dro := ro
		dro.Partitions = tc.partitions
		s := p.StreamFrames(context.Background(), FrameSliceSource(frames...), StreamOptions{
			Render:      &dro,
			RenderAddrs: tc.addrs,
			Buffer:      2,
		})
		got := 0
		for r := range s.Out {
			if r.Index != got {
				t.Fatalf("%s: frame %d arrived with index %d", tc.name, got, r.Index)
			}
			if r.Rast != nil {
				t.Errorf("%s: distributed render materialized a local rasterizer", tc.name)
			}
			if r.VR == nil {
				t.Errorf("%s: frame %d missing volume renderer stats", tc.name, got)
			}
			if !sameFrame(r.FB, want[got]) {
				t.Errorf("%s: frame %d not bit-identical to local render", tc.name, got)
			}
			s.RecycleFB(r.FB)
			got++
		}
		if err := s.Wait(); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got != len(frames) {
			t.Fatalf("%s: %d frames, want %d", tc.name, got, len(frames))
		}
	}
}

func startRenderWorker(t *testing.T) *remote.Worker {
	t.Helper()
	w, err := remote.NewWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

// TestStreamDistributedRenderWorkerLoss: killing a render worker
// mid-stream must not change a single pixel — the lost partitions
// re-dispatch to the survivors and every composited frame stays
// bit-identical to the local render.
func TestStreamDistributedRenderWorkerLoss(t *testing.T) {
	p, frames := streamFixture(t, 2500)
	long := append(frames, frames...)
	long = append(long, frames...) // 9 frames
	ro := RenderOptions{Width: 80, Height: 80, Workers: 2, Partitions: 4}

	var want []*render.Framebuffer
	local := p.StreamFrames(context.Background(), FrameSliceSource(long...), StreamOptions{Render: &ro})
	for r := range local.Out {
		want = append(want, r.FB)
	}
	if err := local.Wait(); err != nil {
		t.Fatal(err)
	}

	workers := make([]*remote.Worker, 3)
	addrs := make([]string, 3)
	for i := range workers {
		workers[i] = startRenderWorker(t)
		addrs[i] = workers[i].Addr()
	}
	before := runtime.NumGoroutine()

	s := p.StreamFrames(context.Background(), FrameSliceSource(long...), StreamOptions{
		Render:      &ro,
		RenderAddrs: addrs,
		Buffer:      2,
		RenderPolicy: &remote.FleetOptions{
			Retry:         pipeline.RetryPolicy{MaxAttempts: 6, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Jitter: -1},
			EjectAfter:    1,
			ProbeInterval: -1,
		},
	})
	got := 0
	for r := range s.Out {
		if !sameFrame(r.FB, want[got]) {
			t.Errorf("frame %d not bit-identical across worker loss", got)
		}
		s.RecycleFB(r.FB)
		got++
		if got == 2 {
			// Kill a member mid-stream, with partitions in flight on it.
			workers[0].Close()
		}
	}
	if err := s.Wait(); err != nil {
		t.Fatalf("Wait = %v after losing one of three render workers", err)
	}
	if got != len(long) {
		t.Fatalf("stream emitted %d frames, want %d", got, len(long))
	}
	noLeaks(t, before)
}

// TestStreamRenderAddrsValidation: RenderAddrs without a render stage
// is rejected, and a dead render worker address fails the stream at
// startup with a dial error.
func TestStreamRenderAddrsValidation(t *testing.T) {
	p, frames := streamFixture(t, 500)

	s := p.StreamFrames(context.Background(), FrameSliceSource(frames...), StreamOptions{
		RenderAddrs: []string{"127.0.0.1:1"},
	})
	for range s.Out {
		t.Error("RenderAddrs without Render emitted output")
	}
	if err := s.Wait(); err == nil || !strings.Contains(err.Error(), "set Render") {
		t.Errorf("Wait = %v, want missing-Render validation error", err)
	}

	w := startRenderWorker(t)
	addr := w.Addr()
	w.Close()
	s = p.StreamFrames(context.Background(), FrameSliceSource(frames...), StreamOptions{
		Render:      &RenderOptions{Width: 32, Height: 32},
		RenderAddrs: []string{addr},
	})
	for range s.Out {
		t.Error("stream emitted a frame despite a dead render worker address")
	}
	if err := s.Wait(); err == nil || !strings.Contains(err.Error(), "dialing render worker") {
		t.Errorf("Wait = %v, want render dial failure", err)
	}
}
