package core

import (
	"testing"

	"repro/internal/beam"
	"repro/internal/octree"
	"repro/internal/sos"
	"repro/internal/vec"
)

func TestVerify(t *testing.T) {
	if err := Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestParticlePipelineEndToEnd(t *testing.T) {
	p := NewParticlePipeline(5000)
	p.Extract.VolumeRes = 16 // keep the test fast
	sim, err := p.NewSim()
	if err != nil {
		t.Fatalf("NewSim: %v", err)
	}
	sim.RunPeriods(5)
	rep, err := p.ProcessFrame(sim.Snapshot())
	if err != nil {
		t.Fatalf("ProcessFrame: %v", err)
	}
	if rep.NumPoints() == 0 {
		t.Fatal("no halo points extracted")
	}
	tf, err := DefaultTF(rep)
	if err != nil {
		t.Fatalf("DefaultTF: %v", err)
	}
	if !tf.Complementary() {
		t.Error("default TF pair not complementary")
	}
	fb, rast, vr, err := RenderFrame(rep, tf, 64, 64, vec.New(0.4, 0.3, 1))
	if err != nil {
		t.Fatalf("RenderFrame: %v", err)
	}
	if rast.PointCount == 0 {
		t.Error("no points rendered")
	}
	if vr.SampleCount == 0 {
		t.Error("no volume samples")
	}
	if fb.CoveredPixels(0.005) == 0 {
		t.Error("black frame")
	}
}

func TestParticlePipelinePhasePlot(t *testing.T) {
	p := NewParticlePipeline(3000)
	p.Extract.VolumeRes = 8
	p.Axes = [3]beam.Axis{beam.AxisX, beam.AxisPX, beam.AxisY} // Fig 1 phase plot
	sim, err := p.NewSim()
	if err != nil {
		t.Fatal(err)
	}
	sim.RunPeriods(2)
	rep, err := p.ProcessFrame(sim.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	// Phase-plot points live in (x, px, y) space: the px spread of the
	// stored halo points must be much smaller than the x spread for
	// this beam. (rep.Bounds itself is the cubical octree root cell, so
	// measure the data, not the cell.)
	ext := vec.Empty()
	for _, p := range rep.Points {
		ext = ext.ExtendPoint(p)
	}
	size := ext.Size()
	if size.Y >= size.X {
		t.Errorf("phase plot point extents %v do not look like (x, px, y)", size)
	}
}

func TestFieldPipelineEndToEnd(t *testing.T) {
	p := NewFieldPipeline(6, 20)
	frame, err := p.Solve(4)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if frame.MaxE() == 0 {
		t.Fatal("no field developed")
	}
	res, err := p.TraceE(frame)
	if err != nil {
		t.Fatalf("TraceE: %v", err)
	}
	if len(res.Lines) == 0 {
		t.Fatal("no lines traced")
	}
	fb, st, err := p.RenderLines(res.Lines, sos.TechSOS, 64, 64, vec.New(1, 0.5, 0.3))
	if err != nil {
		t.Fatalf("RenderLines: %v", err)
	}
	if st.Triangles == 0 {
		t.Error("no triangles drawn")
	}
	if fb.CoveredPixels(0.005) == 0 {
		t.Error("black frame")
	}
}

func TestFieldPipelineSolverCaching(t *testing.T) {
	p := NewFieldPipeline(6, 5)
	if p.Sim() != nil {
		t.Error("sim exists before Solve")
	}
	f1, err := p.Solve(1)
	if err != nil {
		t.Fatal(err)
	}
	sim := p.Sim()
	f2, err := p.Solve(1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Sim() != sim {
		t.Error("solver not cached between Solve calls")
	}
	if f2.Time <= f1.Time {
		t.Error("second Solve did not advance time")
	}
}

func TestConvertPlotType(t *testing.T) {
	p := NewParticlePipeline(4000)
	sim, err := p.NewSim()
	if err != nil {
		t.Fatal(err)
	}
	sim.RunPeriods(3)
	frame := sim.Snapshot()
	spatial, err := p.Partition(frame)
	if err != nil {
		t.Fatal(err)
	}
	// Convert the (x,y,z) partitioning to a momentum-space plot without
	// touching the original file order.
	mom, err := ConvertPlotType(spatial, frame.E,
		[3]beam.Axis{beam.AxisPX, beam.AxisPY, beam.AxisPZ}, p.Tree)
	if err != nil {
		t.Fatalf("ConvertPlotType: %v", err)
	}
	if err := mom.Validate(); err != nil {
		t.Fatalf("converted tree invalid: %v", err)
	}
	if len(mom.Points) != frame.E.Len() {
		t.Errorf("converted tree holds %d points, want %d", len(mom.Points), frame.E.Len())
	}
	// Every converted point must be the momentum projection of its
	// original particle.
	for i := 0; i < len(mom.Points); i += 371 {
		oi := mom.OrigIndex[i]
		want := frame.E.Point3(int(oi), [3]beam.Axis{beam.AxisPX, beam.AxisPY, beam.AxisPZ})
		if mom.Points[i] != want {
			t.Fatalf("converted point %d mismatch", i)
		}
	}
	// Mismatched ensemble rejected.
	small := beam.NewEnsemble(10)
	if _, err := ConvertPlotType(spatial, small,
		[3]beam.Axis{beam.AxisX, beam.AxisY, beam.AxisZ}, p.Tree); err == nil {
		t.Error("size mismatch accepted")
	}
}

// TestConvertPlotTypeRoundTrip re-keys a spatial (x,y,z) tree to the
// phase plot (x,px,y) and back, verifying at each hop that the
// OrigIndex composition still points at the original particles — the
// §2.3 property that lets the unordered source file be discarded.
func TestConvertPlotTypeRoundTrip(t *testing.T) {
	p := NewParticlePipeline(3000)
	sim, err := p.NewSim()
	if err != nil {
		t.Fatal(err)
	}
	sim.RunPeriods(3)
	frame := sim.Snapshot()

	spatial, err := p.Partition(frame) // keyed on (x, y, z)
	if err != nil {
		t.Fatal(err)
	}
	phaseAxes := [3]beam.Axis{beam.AxisX, beam.AxisPX, beam.AxisY}
	phase, err := ConvertPlotType(spatial, frame.E, phaseAxes, p.Tree)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ConvertPlotType(phase, frame.E, p.Axes, p.Tree)
	if err != nil {
		t.Fatal(err)
	}

	for _, tree := range []*struct {
		name string
		tr   *octree.Tree
		axes [3]beam.Axis
	}{
		{"phase", phase, phaseAxes},
		{"back", back, p.Axes},
	} {
		if err := tree.tr.Validate(); err != nil {
			t.Fatalf("%s tree invalid: %v", tree.name, err)
		}
		// OrigIndex must remain a permutation of the frame…
		seen := make([]bool, frame.E.Len())
		for _, oi := range tree.tr.OrigIndex {
			if oi < 0 || int(oi) >= len(seen) || seen[oi] {
				t.Fatalf("%s tree OrigIndex is not a permutation (index %d)", tree.name, oi)
			}
			seen[oi] = true
		}
		// …and every stored point must be its original particle
		// projected onto the tree's axes.
		for i, pt := range tree.tr.Points {
			want := frame.E.Point3(int(tree.tr.OrigIndex[i]), tree.axes)
			if pt != want {
				t.Fatalf("%s tree point %d does not match original particle %d",
					tree.name, i, tree.tr.OrigIndex[i])
			}
		}
	}

	// The round trip must key identically to partitioning from scratch.
	direct, err := p.Partition(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Points) != len(direct.Points) || back.NumLeaves() != direct.NumLeaves() {
		t.Errorf("round-tripped tree shape (%d pts, %d leaves) != direct (%d pts, %d leaves)",
			len(back.Points), back.NumLeaves(), len(direct.Points), direct.NumLeaves())
	}
}

func TestTraceBClosedLoops(t *testing.T) {
	p := NewFieldPipeline(6, 15)
	frame, err := p.Solve(4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.TraceB(frame)
	if err != nil {
		t.Fatalf("TraceB: %v", err)
	}
	if len(res.Lines) == 0 {
		t.Fatal("no magnetic lines traced")
	}
	mesh, err := p.Mesh()
	if err != nil {
		t.Fatal(err)
	}
	closed := 0
	for _, l := range res.Lines {
		if l.Closed {
			closed++
		}
		for _, pt := range l.Points {
			if !mesh.Inside(pt) {
				t.Fatal("magnetic line left the vacuum region")
			}
		}
	}
	t.Logf("%d of %d magnetic lines detected as closed loops", closed, len(res.Lines))
}
