package core

import (
	"context"
	"fmt"
	"math"
	"sync"

	"repro/internal/compositor"
	"repro/internal/hybrid"
	"repro/internal/remote"
	"repro/internal/render"
	"repro/internal/volren"
)

// Sort-last distributed rendering: the frame's halo points — the part
// of a terascale frame that grows with the data — split along the
// octree partition into contiguous sub-volumes, each rendered to an
// RGBA+depth partial framebuffer by a fleet render worker
// (render.partial.v1), composited back in partition order
// (compositor.CompositeDepth), with the fixed-size density volume
// ray-cast over the merged image locally. Every step is deterministic,
// so the composited frame is bit-identical to the single-node
// RenderFrame at any partition count, any worker count, and across
// fleet failover.

// splitPoints returns parts+1 ascending cut indices over a frame's n
// points, snapped to octree-cell boundaries where possible: the point
// array is ordered cell by cell with constant per-cell density, so
// any index where the density changes is a cell boundary. Each even
// cut k·n/parts moves to the nearest boundary within half a
// partition's width; a cut inside one giant equal-density run keeps
// its even index (correctness never depends on alignment — only the
// spatial coherence of each partition's depth slab does).
func splitPoints(density []float32, parts int) []int {
	n := len(density)
	cuts := make([]int, parts+1)
	cuts[parts] = n
	window := n / (2 * parts)
	for k := 1; k < parts; k++ {
		t := k * n / parts
		best, bestDist := t, window+1
		for d := 0; d <= window; d++ {
			if i := t - d; i > 0 && density[i] != density[i-1] {
				best, bestDist = i, d
				break
			}
		}
		for d := 1; d <= window && d < bestDist; d++ {
			if i := t + d; i < n && density[i] != density[i-1] {
				best = i
				break
			}
		}
		if best < cuts[k-1] {
			best = cuts[k-1]
		}
		cuts[k] = best
	}
	return cuts
}

// renderDistributed renders one frame with the point pass fanned
// across the render fleet in parts sub-volume partitions, composites
// the partials into fb (which must be cleared), and runs the volume
// pass over the merged image. It returns the volume renderer for its
// stats; there is no local rasterizer — the point-pass stats live on
// the workers.
func renderDistributed(ctx context.Context, fl *remote.Fleet, rep *hybrid.Representation,
	ro RenderOptions, parts int, fb *render.Framebuffer) (*volren.Renderer, error) {

	tf, err := DefaultTF(rep)
	if err != nil {
		return nil, err
	}
	cam, err := render.LookAtBounds(rep.Bounds, ro.ViewDir, math.Pi/3, float64(ro.Width)/float64(ro.Height))
	if err != nil {
		return nil, err
	}
	cuts := splitPoints(rep.PointDensity, parts)

	// Fan the sub-volume renders out concurrently; the fleet stripes
	// them over its members, bounded by the per-member windows, and
	// re-dispatches a lost partition to a survivor with the identical
	// request bytes. The partials arrive in completion order; Seq
	// restores the partition order at composite time.
	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	partials := make([]*render.PartialFrame, parts)
	errs := make([]error, parts)
	var wg sync.WaitGroup
	for k := 0; k < parts; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			lo, hi := cuts[k], cuts[k+1]
			pf, err := fl.ComputeRender(fctx, &remote.RenderPartialRequest{
				Width: ro.Width, Height: ro.Height,
				Seq: k, Offset: lo,
				ViewDir: ro.ViewDir, PointScale: ro.PointScale, Opaque: ro.Opaque,
				Bounds: rep.Bounds, Threshold: rep.Threshold, MaxLeafD: rep.MaxLeafD,
				Points: rep.Points[lo:hi], Density: rep.PointDensity[lo:hi],
			})
			if err != nil {
				errs[k] = fmt.Errorf("partition %d/%d: %w", k, parts, err)
				cancel() // siblings' renders are moot
				return
			}
			partials[k] = pf
		}(k)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := compositor.CompositeDepth(fb, partials, 0); err != nil {
		return nil, err
	}
	// The volume is fixed-resolution (it does not scale with the data),
	// so its ray cast stays on the compositing node, marching over the
	// merged depth buffer exactly as the single-node pass marches over
	// its own — same inputs, same image.
	vr, err := volren.New(rep.Volume, tf)
	if err != nil {
		return nil, err
	}
	vr.Render(fb, cam)
	return vr, nil
}
