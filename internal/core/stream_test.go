package core

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/beam"
	"repro/internal/hybrid"
	"repro/internal/sos"
)

// streamFixture returns a small fixed-seed pipeline and three
// captured frames.
func streamFixture(t *testing.T, n int) (*ParticlePipeline, []beam.Frame) {
	t.Helper()
	p := NewParticlePipeline(n)
	p.Extract.VolumeRes = 16
	sim, err := p.NewSim()
	if err != nil {
		t.Fatal(err)
	}
	var frames []beam.Frame
	for i := 0; i < 3; i++ {
		sim.RunPeriods(2)
		frames = append(frames, sim.Snapshot())
	}
	return p, frames
}

// TestStreamMatchesSerialBitIdentical: the streaming engine must
// produce byte-for-byte the same hybrid representations as the serial
// partition+extract path on a fixed-seed 3-frame run, including with
// multi-worker stages.
func TestStreamMatchesSerialBitIdentical(t *testing.T) {
	p, frames := streamFixture(t, 4000)

	// Serial path: partition + extract one frame at a time.
	var want [][]byte
	for _, f := range frames {
		tree, err := p.Partition(f)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := p.Hybrid(tree)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.Write(&buf); err != nil {
			t.Fatal(err)
		}
		want = append(want, buf.Bytes())
	}

	// Streaming path with stage overlap and per-stage workers.
	s := p.StreamFrames(context.Background(), FrameSliceSource(frames...), StreamOptions{
		PartitionWorkers: 3,
		ExtractWorkers:   2,
		Buffer:           2,
	})
	got := 0
	for r := range s.Out {
		if r.Index != got {
			t.Fatalf("result %d arrived with index %d (order violated)", got, r.Index)
		}
		var buf bytes.Buffer
		if err := r.Rep.Write(&buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), want[got]) {
			t.Errorf("frame %d: streaming representation differs from serial (%d vs %d bytes)",
				got, buf.Len(), len(want[got]))
		}
		got++
	}
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	if got != len(frames) {
		t.Fatalf("stream emitted %d frames, want %d", got, len(frames))
	}
}

// TestStreamFromSim drives the stream from a live simulation source
// with rendering enabled and checks the per-frame outputs.
func TestStreamFromSim(t *testing.T) {
	p := NewParticlePipeline(3000)
	p.Extract.VolumeRes = 8
	sim, err := p.NewSim()
	if err != nil {
		t.Fatal(err)
	}
	s := p.StreamFrames(context.Background(), SimSource(sim, 3, 1), StreamOptions{
		KeepFrames: true,
		KeepTrees:  true,
		Render:     &RenderOptions{Width: 48, Height: 48},
	})
	n := 0
	for r := range s.Out {
		if r.Frame.E == nil {
			t.Fatal("KeepFrames did not retain the ensemble")
		}
		if r.Tree == nil {
			t.Fatal("KeepTrees did not retain the tree")
		}
		if r.Rep == nil || r.Rep.NumPoints() == 0 {
			t.Fatal("no hybrid representation extracted")
		}
		if r.FB == nil || r.FB.CoveredPixels(0.005) == 0 {
			t.Fatal("render stage produced a black frame")
		}
		s.RecycleFB(r.FB)
		n++
	}
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("got %d frames, want 3", n)
	}
}

// TestStreamSkipExtract: the partition-only stream (the paper's
// partitioning program) keeps trees and skips representations.
func TestStreamSkipExtract(t *testing.T) {
	p, frames := streamFixture(t, 2000)
	s := p.StreamFrames(context.Background(), FrameSliceSource(frames...), StreamOptions{
		SkipExtract: true,
	})
	n := 0
	for r := range s.Out {
		if r.Tree == nil {
			t.Fatal("partition-only stream dropped the tree")
		}
		if r.Rep != nil {
			t.Fatal("partition-only stream extracted anyway")
		}
		n++
	}
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	if n != len(frames) {
		t.Fatalf("got %d frames, want %d", n, len(frames))
	}
}

// TestStreamRenderRequiresExtract: Render with SkipExtract is a
// contradiction and must fail the stream instead of silently emitting
// nil framebuffers.
func TestStreamRenderRequiresExtract(t *testing.T) {
	p, frames := streamFixture(t, 2000)
	s := p.StreamFrames(context.Background(), FrameSliceSource(frames...), StreamOptions{
		SkipExtract: true,
		Render:      &RenderOptions{Width: 32, Height: 32},
	})
	for range s.Out {
		t.Fatal("contradictory stream emitted a frame")
	}
	if err := s.Wait(); err == nil {
		t.Fatal("Render+SkipExtract accepted")
	}
}

// TestStreamCancellation: aborting a stream mid-frame returns promptly
// and leaves no goroutines behind.
func TestStreamCancellation(t *testing.T) {
	before := runtime.NumGoroutine()

	p := NewParticlePipeline(2000)
	p.Extract.VolumeRes = 8
	sim, err := p.NewSim()
	if err != nil {
		t.Fatal(err)
	}
	// A long stream we will abandon after one frame.
	s := p.StreamFrames(context.Background(), SimSource(sim, 1000, 1), StreamOptions{
		PartitionWorkers: 2,
		ExtractWorkers:   2,
		Buffer:           2,
	})
	if _, ok := <-s.Out; !ok {
		t.Fatal("stream closed before first frame")
	}
	s.Cancel()

	done := make(chan error, 1)
	go func() { done <- s.Wait() }()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Wait = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Wait did not return promptly after Cancel")
	}

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after cancel", before, runtime.NumGoroutine())
}

// TestProcessFrameWrapsStream: the one-shot path must agree with an
// explicitly streamed run (it is the same code).
func TestProcessFrameWrapsStream(t *testing.T) {
	p, frames := streamFixture(t, 2000)
	rep, err := p.ProcessFrame(frames[0])
	if err != nil {
		t.Fatal(err)
	}
	s := p.StreamFrames(context.Background(), FrameSliceSource(frames[0]), StreamOptions{})
	var streamed *hybrid.Representation
	for r := range s.Out {
		streamed = r.Rep
	}
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := rep.Write(&a); err != nil {
		t.Fatal(err)
	}
	if err := streamed.Write(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("ProcessFrame and StreamFrames disagree")
	}
}

// TestFieldStream runs the solve → trace → render chain as a stream.
func TestFieldStream(t *testing.T) {
	p := NewFieldPipeline(6, 10)
	s, err := p.StreamSolve(context.Background(), FieldStreamOptions{
		Frames:          2,
		PeriodsPerFrame: 1,
		TraceWorkers:    2,
		Render:          &FieldRenderOptions{Technique: sos.TechSOS, Width: 48, Height: 48},
	})
	if err != nil {
		t.Fatal(err)
	}
	var lastTime float64
	n := 0
	for r := range s.Out {
		if r.Index != n {
			t.Fatalf("frame %d arrived with index %d", n, r.Index)
		}
		if r.Frame.Time <= lastTime {
			t.Errorf("frame %d time %g did not advance past %g", n, r.Frame.Time, lastTime)
		}
		lastTime = r.Frame.Time
		if r.E == nil || len(r.E.Lines) == 0 {
			t.Fatal("no electric lines traced")
		}
		if r.FB == nil || r.Stats.Triangles == 0 {
			t.Fatal("render stage drew nothing")
		}
		n++
	}
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("got %d frames, want 2", n)
	}
}

// TestFieldStreamValidation rejects degenerate options.
func TestFieldStreamValidation(t *testing.T) {
	p := NewFieldPipeline(6, 5)
	if _, err := p.StreamSolve(context.Background(), FieldStreamOptions{Frames: 0, PeriodsPerFrame: 1}); err == nil {
		t.Error("Frames=0 accepted")
	}
	if _, err := p.StreamSolve(context.Background(), FieldStreamOptions{Frames: 1, PeriodsPerFrame: 0}); err == nil {
		t.Error("PeriodsPerFrame=0 accepted")
	}
}
