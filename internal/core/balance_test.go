package core

import (
	"bytes"
	"context"
	"runtime"
	"testing"
	"time"

	"repro/internal/beam"
	"repro/internal/pipeline"
	"repro/internal/remote"
)

// serialWant renders the reference byte streams for frames through the
// serial partition+extract path.
func serialWant(t *testing.T, p *ParticlePipeline, frames []beam.Frame) [][]byte {
	t.Helper()
	var want [][]byte
	local := p.StreamFrames(context.Background(), FrameSliceSource(frames...), StreamOptions{
		PartitionWorkers: 2,
		ExtractWorkers:   2,
	})
	for r := range local.Out {
		want = append(want, r.Rep.AppendBinary(nil))
	}
	if err := local.Wait(); err != nil {
		t.Fatal(err)
	}
	return want
}

// TestStreamBalanceBitIdentical: the acceptance bar for the balancer —
// a local stream with self-balancing enabled (aggressive interval, so
// several rebalances land mid-stream) emits byte-for-byte the frames
// of the static run, in order, and cleans up its balancer goroutine.
func TestStreamBalanceBitIdentical(t *testing.T) {
	p, frames := streamFixture(t, 3000)
	p.Extract.Workers = 2
	long := append(frames, frames...)
	long = append(long, frames...)
	long = append(long, frames...) // 12 frames
	want := serialWant(t, p, long)

	before := runtime.NumGoroutine()
	s := p.StreamFrames(context.Background(), FrameSliceSource(long...), StreamOptions{
		// Deliberately mis-provisioned: partition over-staffed, extract
		// starved, so the balancer has real moves to make.
		PartitionWorkers: 4,
		ExtractWorkers:   1,
		Buffer:           2,
		Balance: &BalanceOptions{
			BalancerOptions: pipeline.BalancerOptions{Interval: 2 * time.Millisecond},
		},
	})
	if s.Balancer == nil {
		t.Fatal("Balance set but stream has no balancer")
	}
	got := 0
	for r := range s.Out {
		if r.Index != got {
			t.Fatalf("result %d arrived with index %d (rebalance broke ordering)", got, r.Index)
		}
		if !bytes.Equal(r.Rep.AppendBinary(nil), want[got]) {
			t.Errorf("frame %d: balanced stream differs from static", got)
		}
		got++
	}
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	if got != len(long) {
		t.Fatalf("stream emitted %d frames, want %d", got, len(long))
	}
	// The stage table must expose the elastic bounds the balancer used.
	sawElastic := false
	for _, st := range s.Snapshot() {
		if st.Resizable && st.MaxWorkers > st.MinWorkers {
			sawElastic = true
		}
	}
	if !sawElastic {
		t.Error("no elastic stage in the snapshot of a balanced stream")
	}
	noLeaks(t, before)
}

// TestStreamBalancePlacementBitIdentical: with a fleet address AND
// local capacity, the extract stage becomes placement-switchable. The
// test forces flips remote→local→remote at frame boundaries while the
// stream runs; every frame must still be byte-identical to the serial
// run and in order — placement is invisible in the output.
func TestStreamBalancePlacementBitIdentical(t *testing.T) {
	p, frames := streamFixture(t, 3000)
	p.Extract.Workers = 2
	long := append(frames, frames...)
	long = append(long, frames...)
	long = append(long, frames...) // 12 frames
	want := serialWant(t, p, long)

	w, err := remote.NewWorker("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	before := runtime.NumGoroutine()

	s := p.StreamFrames(context.Background(), FrameSliceSource(long...), StreamOptions{
		ExtractAddrs:   []string{w.Addr()},
		ExtractWorkers: 2,
		Buffer:         2,
		ExtractPolicy: &remote.FleetOptions{
			Retry:         pipeline.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Jitter: -1},
			ProbeInterval: -1,
		},
		Balance: &BalanceOptions{
			// Long interval: this test drives placement by hand; the
			// balancer just provides the switchable topology.
			BalancerOptions: pipeline.BalancerOptions{Interval: time.Minute},
		},
	})
	pl := s.Pipeline()
	placeable := false
	for _, st := range s.Snapshot() {
		if st.Name == "extract" && st.Placeable {
			placeable = true
		}
	}
	if !placeable {
		t.Fatal("fleet+Balance stream has no placement-switchable extract stage")
	}

	got := 0
	for r := range s.Out {
		if r.Index != got {
			t.Fatalf("result %d arrived with index %d (placement flip broke ordering)", got, r.Index)
		}
		if !bytes.Equal(r.Rep.AppendBinary(nil), want[got]) {
			t.Errorf("frame %d: placement-switched stream differs from serial", got)
		}
		got++
		switch got {
		case 3:
			if !pl.SetStagePlacement("extract", true) {
				t.Error("SetStagePlacement(remote) refused")
			}
		case 6:
			pl.SetStagePlacement("extract", false)
		case 9:
			pl.SetStagePlacement("extract", true)
		}
	}
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	if got != len(long) {
		t.Fatalf("stream emitted %d frames, want %d", got, len(long))
	}
	// Both sides must actually have run.
	for _, st := range s.Snapshot() {
		if st.Name != "extract" {
			continue
		}
		if st.LocalEWMA <= 0 || st.RemoteEWMA <= 0 {
			t.Errorf("placement sides not both exercised: local=%v remote=%v",
				st.LocalEWMA, st.RemoteEWMA)
		}
		if st.Fallbacks != 0 {
			t.Errorf("%d remote fallbacks against a healthy worker", st.Fallbacks)
		}
	}
	noLeaks(t, before)
}

// TestStreamBalanceQuiescentNoOp: enabling Balance must not change
// results when the chain is already well-provisioned and the balancer
// finds nothing to do.
func TestStreamBalanceQuiescentNoOp(t *testing.T) {
	p, frames := streamFixture(t, 2000)
	p.Extract.Workers = 2
	want := serialWant(t, p, frames)

	s := p.StreamFrames(context.Background(), FrameSliceSource(frames...), StreamOptions{
		PartitionWorkers: 2,
		ExtractWorkers:   2,
		Balance:          &BalanceOptions{},
	})
	got := 0
	for r := range s.Out {
		if !bytes.Equal(r.Rep.AppendBinary(nil), want[got]) {
			t.Errorf("frame %d differs under a quiescent balancer", got)
		}
		got++
	}
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	if got != len(frames) {
		t.Fatalf("%d of %d frames", got, len(frames))
	}
}
