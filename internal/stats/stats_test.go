package stats

import (
	"math"
	"testing"

	"repro/internal/hybrid"
	"repro/internal/render"
)

func frame(t *testing.T, w, h int, lum float64) *render.Framebuffer {
	t.Helper()
	fb, err := render.NewFramebuffer(w, h)
	if err != nil {
		t.Fatal(err)
	}
	fb.Clear(hybrid.RGBA{R: lum, G: lum, B: lum, A: 1})
	return fb
}

func TestRMSEIdentical(t *testing.T) {
	a := frame(t, 8, 8, 0.5)
	b := frame(t, 8, 8, 0.5)
	got, err := RMSE(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("RMSE of identical frames = %v", got)
	}
}

func TestRMSEUniformDifference(t *testing.T) {
	a := frame(t, 8, 8, 0.75)
	b := frame(t, 8, 8, 0.25)
	got, err := RMSE(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.5) > 1e-6 {
		t.Errorf("RMSE = %v, want 0.5", got)
	}
}

func TestRMSESizeMismatch(t *testing.T) {
	a := frame(t, 8, 8, 0)
	b := frame(t, 4, 8, 0)
	if _, err := RMSE(a, b); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestPSNR(t *testing.T) {
	a := frame(t, 8, 8, 0.5)
	b := frame(t, 8, 8, 0.5)
	p, err := PSNR(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(p, 1) {
		t.Errorf("PSNR of identical frames = %v, want +Inf", p)
	}
	c := frame(t, 8, 8, 0.4)
	p2, err := PSNR(a, c)
	if err != nil {
		t.Fatal(err)
	}
	want := 20 * math.Log10(1/0.1)
	if math.Abs(p2-want) > 1e-6 {
		t.Errorf("PSNR = %v, want %v", p2, want)
	}
}

func TestGradientEnergyFlatVsEdge(t *testing.T) {
	flat := frame(t, 16, 16, 0.5)
	if g := GradientEnergy(flat); g != 0 {
		t.Errorf("flat frame gradient energy = %v", g)
	}
	// Half-white, half-black: one column of strong edges.
	edged := frame(t, 16, 16, 0)
	for y := 0; y < 16; y++ {
		for x := 8; x < 16; x++ {
			i := (y*16 + x) * 4
			edged.Color[i], edged.Color[i+1], edged.Color[i+2] = 1, 1, 1
		}
	}
	if g := GradientEnergy(edged); g <= 0 {
		t.Errorf("edged frame gradient energy = %v, want > 0", g)
	}
}

func TestLuminanceHistogram(t *testing.T) {
	fb := frame(t, 4, 4, 0.5)
	h := LuminanceHistogram(fb, 10)
	total := 0
	for _, c := range h {
		total += c
	}
	if total != 16 {
		t.Errorf("histogram total %d, want 16", total)
	}
	if h[5] != 16 {
		t.Errorf("bin 5 = %d, want all 16 pixels", h[5])
	}
}

func TestDimDetailCoverage(t *testing.T) {
	fb := frame(t, 4, 4, 0)
	// Two pixels in the dim band, one bright.
	set := func(x, y int, l float64) {
		i := (y*4 + x) * 4
		fb.Color[i], fb.Color[i+1], fb.Color[i+2] = float32(l), float32(l), float32(l)
	}
	set(0, 0, 0.05)
	set(1, 1, 0.08)
	set(2, 2, 0.9)
	if got := DimDetailCoverage(fb, 0.01, 0.2); got != 2 {
		t.Errorf("dim coverage = %d, want 2", got)
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	if s := StdDev(xs); s != 2 {
		t.Errorf("StdDev = %v, want 2", s)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty input not handled")
	}
}
