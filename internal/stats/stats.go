// Package stats provides the image and distribution metrics the
// experiments use to compare renderings quantitatively: RMSE/PSNR
// between frames, gradient energy (a proxy for the fine detail the
// paper's Fig 1 claims the hybrid rendering preserves), and
// luminance-coverage measures.
package stats

import (
	"fmt"
	"math"

	"repro/internal/render"
)

// RMSE returns the root-mean-square difference between the luminance
// of two equal-size framebuffers.
func RMSE(a, b *render.Framebuffer) (float64, error) {
	if a.W != b.W || a.H != b.H {
		return 0, fmt.Errorf("stats: size mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H)
	}
	var sum float64
	for y := 0; y < a.H; y++ {
		for x := 0; x < a.W; x++ {
			d := a.Luminance(x, y) - b.Luminance(x, y)
			sum += d * d
		}
	}
	return math.Sqrt(sum / float64(a.W*a.H)), nil
}

// PSNR returns the peak signal-to-noise ratio (dB) between two frames,
// treating luminance 1.0 as peak. Identical frames return +Inf.
func PSNR(a, b *render.Framebuffer) (float64, error) {
	rmse, err := RMSE(a, b)
	if err != nil {
		return 0, err
	}
	if rmse == 0 {
		return math.Inf(1), nil
	}
	return 20 * math.Log10(1/rmse), nil
}

// GradientEnergy returns the mean magnitude of the luminance gradient
// over the frame — a standard proxy for image detail. The Fig 1
// comparison uses it: the hybrid rendering "more clearly resolves"
// fine stratifications, which shows up as higher gradient energy in
// the halo region than the pure volume rendering at any resolution.
func GradientEnergy(fb *render.Framebuffer) float64 {
	var sum float64
	n := 0
	for y := 0; y < fb.H-1; y++ {
		for x := 0; x < fb.W-1; x++ {
			l := fb.Luminance(x, y)
			gx := fb.Luminance(x+1, y) - l
			gy := fb.Luminance(x, y+1) - l
			sum += math.Sqrt(gx*gx + gy*gy)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// LuminanceHistogram bins pixel luminance into bins over [0, 1].
func LuminanceHistogram(fb *render.Framebuffer, bins int) []int {
	h := make([]int, bins)
	for y := 0; y < fb.H; y++ {
		for x := 0; x < fb.W; x++ {
			l := fb.Luminance(x, y)
			b := int(l * float64(bins))
			if b < 0 {
				b = 0
			}
			if b >= bins {
				b = bins - 1
			}
			h[b]++
		}
	}
	return h
}

// DimDetailCoverage counts pixels whose luminance falls in (lo, hi] —
// the faint-structure band where the beam halo lives. Volume
// renderings with limited dynamic range push these pixels to zero; the
// hybrid point rendering keeps them lit.
func DimDetailCoverage(fb *render.Framebuffer, lo, hi float64) int {
	n := 0
	for y := 0; y < fb.H; y++ {
		for x := 0; x < fb.W; x++ {
			l := fb.Luminance(x, y)
			if l > lo && l <= hi {
				n++
			}
		}
	}
	return n
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)))
}
