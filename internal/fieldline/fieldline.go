// Package fieldline integrates electric and magnetic field lines
// through sampled vector fields — the streamline-integration core of
// the paper's §3 visualization pipeline. Lines are integrated with
// classical RK4 under arc-length parameterization (the tangent is the
// normalized field), so the geometric step size is uniform regardless
// of field magnitude, and each sample records the local field strength
// for the strength-dependent styling of Figs 6(e) and 10.
package fieldline

import (
	"fmt"
	"math"

	"repro/internal/par"
	"repro/internal/vec"
)

// Field is a static vector field. Implementations include the
// electric/magnetic adapters over emsim.FieldFrame and the analytic
// fields used in tests.
type Field interface {
	At(p vec.V3) vec.V3
}

// FieldFunc adapts a function to the Field interface.
type FieldFunc func(p vec.V3) vec.V3

// At implements Field.
func (f FieldFunc) At(p vec.V3) vec.V3 { return f(p) }

// Config controls line integration.
type Config struct {
	// Step is the arc-length integration step in world units.
	Step float64
	// MaxSteps bounds each direction of integration.
	MaxSteps int
	// MinMag terminates integration when the local field magnitude
	// drops below it (for electric lines this is reaching a null or a
	// conductor surface where the sampled field fades to zero).
	MinMag float64
	// Domain, when non-nil, terminates integration when it reports
	// false (e.g. leaving the vacuum region).
	Domain func(p vec.V3) bool
	// CloseLoop stops integration when the line returns within Step of
	// its seed after at least 8 steps — magnetic field lines close on
	// themselves.
	CloseLoop bool
}

// Validate reports the first problem with the configuration.
func (c Config) Validate() error {
	if c.Step <= 0 {
		return fmt.Errorf("fieldline: step %g must be positive", c.Step)
	}
	if c.MaxSteps < 1 {
		return fmt.Errorf("fieldline: max steps %d must be >= 1", c.MaxSteps)
	}
	if c.MinMag < 0 {
		return fmt.Errorf("fieldline: min magnitude %g must be >= 0", c.MinMag)
	}
	return nil
}

// Line is one integrated field line: points, unit tangents, and the
// field magnitude at each point. Points/Tangents/Strengths always have
// equal length.
type Line struct {
	Points    []vec.V3
	Tangents  []vec.V3
	Strengths []float64
	Closed    bool // terminated by loop closure
}

// NumPoints returns the sample count.
func (l *Line) NumPoints() int { return len(l.Points) }

// Length returns the polyline arc length.
func (l *Line) Length() float64 {
	var sum float64
	for i := 1; i < len(l.Points); i++ {
		sum += l.Points[i].Dist(l.Points[i-1])
	}
	return sum
}

// MaxStrength returns the peak field magnitude along the line.
func (l *Line) MaxStrength() float64 {
	var m float64
	for _, s := range l.Strengths {
		if s > m {
			m = s
		}
	}
	return m
}

// dirAt returns the normalized field direction and magnitude at p.
func dirAt(f Field, p vec.V3) (vec.V3, float64) {
	v := f.At(p)
	mag := v.Len()
	if mag == 0 {
		return vec.V3{}, 0
	}
	return v.Scale(1 / mag), mag
}

// Trace integrates a field line from seed in the given direction
// (+1 with the field, -1 against it) using RK4 on the normalized
// field. The seed itself is the first sample.
func Trace(f Field, seed vec.V3, cfg Config, sign float64) (*Line, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if sign >= 0 {
		sign = 1
	} else {
		sign = -1
	}
	line := &Line{}
	p := seed
	for step := 0; step <= cfg.MaxSteps; step++ {
		d, mag := dirAt(f, p)
		if mag < cfg.MinMag || mag == 0 {
			break
		}
		if cfg.Domain != nil && !cfg.Domain(p) {
			break
		}
		line.Points = append(line.Points, p)
		line.Tangents = append(line.Tangents, d.Scale(sign))
		line.Strengths = append(line.Strengths, mag)

		if cfg.CloseLoop && step >= 8 && p.Dist(seed) < cfg.Step {
			line.Closed = true
			break
		}

		// RK4 on dp/ds = sign * v(p)/|v(p)|.
		h := cfg.Step
		k1, m1 := dirAt(f, p)
		if m1 == 0 {
			break
		}
		k2, m2 := dirAt(f, p.Add(k1.Scale(sign*h/2)))
		if m2 == 0 {
			break
		}
		k3, m3 := dirAt(f, p.Add(k2.Scale(sign*h/2)))
		if m3 == 0 {
			break
		}
		k4, m4 := dirAt(f, p.Add(k3.Scale(sign*h)))
		if m4 == 0 {
			break
		}
		delta := k1.Add(k2.Scale(2)).Add(k3.Scale(2)).Add(k4).Scale(sign * h / 6)
		if !delta.IsFinite() || delta.Len() == 0 {
			break
		}
		p = p.Add(delta)
	}
	return line, nil
}

// TraceAll integrates one line per seed concurrently on par.ForChunks
// (workers 0 = auto) — lines are independent, so the batch scales with
// cores while result order and every line stay identical to serial
// Trace calls in seed order. The field's At must be safe for
// concurrent calls (the sampled-frame adapters and analytic fields
// are: they only read).
func TraceAll(f Field, seeds []vec.V3, cfg Config, sign float64, workers int) ([]*Line, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	lines := make([]*Line, len(seeds))
	errs := make([]error, len(seeds))
	par.ForChunks(len(seeds), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			lines[i], errs[i] = Trace(f, seeds[i], cfg, sign)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return lines, nil
}

// TraceBothAll is the bidirectional batch variant of TraceAll: one
// TraceBoth per seed, integrated concurrently.
func TraceBothAll(f Field, seeds []vec.V3, cfg Config, workers int) ([]*Line, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	lines := make([]*Line, len(seeds))
	errs := make([]error, len(seeds))
	par.ForChunks(len(seeds), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			lines[i], errs[i] = TraceBoth(f, seeds[i], cfg)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return lines, nil
}

// TraceBoth integrates from the seed in both directions and joins the
// two halves into a single line through the seed — the standard way to
// center a streamline on its seed point.
func TraceBoth(f Field, seed vec.V3, cfg Config) (*Line, error) {
	back, err := Trace(f, seed, cfg, -1)
	if err != nil {
		return nil, err
	}
	fwd, err := Trace(f, seed, cfg, +1)
	if err != nil {
		return nil, err
	}
	line := &Line{}
	// Backward half reversed (excluding the seed, which forward holds),
	// with tangents flipped to point along the line's forward direction.
	for i := len(back.Points) - 1; i >= 1; i-- {
		line.Points = append(line.Points, back.Points[i])
		line.Tangents = append(line.Tangents, back.Tangents[i].Neg())
		line.Strengths = append(line.Strengths, back.Strengths[i])
	}
	line.Points = append(line.Points, fwd.Points...)
	line.Tangents = append(line.Tangents, fwd.Tangents...)
	line.Strengths = append(line.Strengths, fwd.Strengths...)
	line.Closed = back.Closed || fwd.Closed
	return line, nil
}

// Resample returns a copy of the line with at most maxPoints samples,
// dropping intermediate points evenly. Tangents and strengths follow
// their points. It is the decimation step used before strip
// generation when a coarser representation suffices.
func (l *Line) Resample(maxPoints int) *Line {
	n := len(l.Points)
	if maxPoints >= n || maxPoints < 2 {
		return l
	}
	out := &Line{Closed: l.Closed}
	for i := 0; i < maxPoints; i++ {
		src := int(math.Round(float64(i) * float64(n-1) / float64(maxPoints-1)))
		out.Points = append(out.Points, l.Points[src])
		out.Tangents = append(out.Tangents, l.Tangents[src])
		out.Strengths = append(out.Strengths, l.Strengths[src])
	}
	return out
}
