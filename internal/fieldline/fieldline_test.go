package fieldline

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/vec"
)

// uniformX is a constant field along +x.
func uniformX(p vec.V3) vec.V3 { return vec.New(2, 0, 0) }

// circular is a field circling the z axis (magnetic-like closed lines).
func circular(p vec.V3) vec.V3 { return vec.New(-p.Y, p.X, 0) }

// radial points away from the origin with 1/r^2 falloff (electric-like).
func radial(p vec.V3) vec.V3 {
	r2 := p.Len2()
	if r2 == 0 {
		return vec.V3{}
	}
	return p.Norm().Scale(1 / r2)
}

func TestConfigValidate(t *testing.T) {
	good := Config{Step: 0.1, MaxSteps: 10}
	if err := good.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
	if (Config{Step: 0, MaxSteps: 10}).Validate() == nil {
		t.Error("accepted zero step")
	}
	if (Config{Step: 0.1, MaxSteps: 0}).Validate() == nil {
		t.Error("accepted zero max steps")
	}
	if (Config{Step: 0.1, MaxSteps: 5, MinMag: -1}).Validate() == nil {
		t.Error("accepted negative min magnitude")
	}
}

func TestTraceUniformFieldIsStraight(t *testing.T) {
	cfg := Config{Step: 0.1, MaxSteps: 50}
	line, err := Trace(FieldFunc(uniformX), vec.New(0, 1, 2), cfg, +1)
	if err != nil {
		t.Fatal(err)
	}
	if line.NumPoints() != 51 {
		t.Fatalf("got %d points, want 51", line.NumPoints())
	}
	last := line.Points[len(line.Points)-1]
	if math.Abs(last.X-5.0) > 1e-9 || last.Y != 1 || last.Z != 2 {
		t.Errorf("end point %v, want (5, 1, 2)", last)
	}
	// All strengths equal the field magnitude 2.
	for _, s := range line.Strengths {
		if s != 2 {
			t.Fatalf("strength %v, want 2", s)
		}
	}
	// Arc length ~ 5.
	if math.Abs(line.Length()-5) > 1e-9 {
		t.Errorf("length %v, want 5", line.Length())
	}
}

func TestTraceBackward(t *testing.T) {
	cfg := Config{Step: 0.1, MaxSteps: 10}
	line, err := Trace(FieldFunc(uniformX), vec.New(0, 0, 0), cfg, -1)
	if err != nil {
		t.Fatal(err)
	}
	last := line.Points[len(line.Points)-1]
	if last.X >= 0 {
		t.Errorf("backward trace went forward: %v", last)
	}
	// Tangents point along the direction of travel (-x).
	if line.Tangents[0].X >= 0 {
		t.Errorf("tangent %v should point -x", line.Tangents[0])
	}
}

func TestTraceCircularStaysOnCircle(t *testing.T) {
	cfg := Config{Step: 0.01, MaxSteps: 2000, CloseLoop: true}
	seed := vec.New(1, 0, 0)
	line, err := Trace(FieldFunc(circular), seed, cfg, +1)
	if err != nil {
		t.Fatal(err)
	}
	if !line.Closed {
		t.Error("circular field line did not close")
	}
	// Radius stays ~1 (RK4 accuracy).
	for i, p := range line.Points {
		if math.Abs(p.Len()-1) > 1e-4 {
			t.Fatalf("point %d radius %v drifted from 1", i, p.Len())
		}
	}
	// Closed loop length ~ 2*pi.
	if math.Abs(line.Length()-2*math.Pi) > 0.1 {
		t.Errorf("loop length %v, want ~%v", line.Length(), 2*math.Pi)
	}
}

func TestTraceStopsAtDomainBoundary(t *testing.T) {
	cfg := Config{
		Step: 0.1, MaxSteps: 1000,
		Domain: func(p vec.V3) bool { return p.X < 2 },
	}
	line, err := Trace(FieldFunc(uniformX), vec.New(0, 0, 0), cfg, +1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range line.Points {
		if p.X >= 2 {
			t.Fatalf("point %v outside domain", p)
		}
	}
	if line.NumPoints() > 25 {
		t.Errorf("line kept %d points; domain exit ignored", line.NumPoints())
	}
}

func TestTraceStopsAtWeakField(t *testing.T) {
	cfg := Config{Step: 0.1, MaxSteps: 10000, MinMag: 0.1}
	// Radial field decays as 1/r^2; integration must stop near r ~ 3.16.
	line, err := Trace(FieldFunc(radial), vec.New(0.5, 0, 0), cfg, +1)
	if err != nil {
		t.Fatal(err)
	}
	last := line.Points[len(line.Points)-1]
	if last.Len() > 3.5 {
		t.Errorf("line continued to r=%v despite MinMag", last.Len())
	}
	if line.NumPoints() == 0 {
		t.Error("no points recorded")
	}
}

func TestTraceZeroFieldProducesEmptyLine(t *testing.T) {
	cfg := Config{Step: 0.1, MaxSteps: 10}
	line, err := Trace(FieldFunc(func(vec.V3) vec.V3 { return vec.V3{} }), vec.New(0, 0, 0), cfg, +1)
	if err != nil {
		t.Fatal(err)
	}
	if line.NumPoints() != 0 {
		t.Errorf("zero field produced %d points", line.NumPoints())
	}
}

func TestTraceBothJoinsHalves(t *testing.T) {
	cfg := Config{Step: 0.1, MaxSteps: 10}
	line, err := TraceBoth(FieldFunc(uniformX), vec.New(0, 0, 0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 10 backward points (excluding seed) + 11 forward points.
	if line.NumPoints() != 21 {
		t.Fatalf("joined line has %d points, want 21", line.NumPoints())
	}
	// Points are monotonically increasing in x.
	for i := 1; i < line.NumPoints(); i++ {
		if line.Points[i].X <= line.Points[i-1].X {
			t.Fatalf("joined line not monotone at %d", i)
		}
	}
	// All tangents point +x after the flip.
	for i, tg := range line.Tangents {
		if tg.X <= 0 {
			t.Fatalf("tangent %d = %v, want +x", i, tg)
		}
	}
}

func TestResample(t *testing.T) {
	cfg := Config{Step: 0.1, MaxSteps: 100}
	line, err := Trace(FieldFunc(uniformX), vec.New(0, 0, 0), cfg, +1)
	if err != nil {
		t.Fatal(err)
	}
	r := line.Resample(11)
	if r.NumPoints() != 11 {
		t.Fatalf("resampled to %d points, want 11", r.NumPoints())
	}
	// Endpoints preserved.
	if r.Points[0] != line.Points[0] || r.Points[10] != line.Points[len(line.Points)-1] {
		t.Error("resample lost endpoints")
	}
	// Resampling to more points than exist returns the line unchanged.
	if got := line.Resample(10000); got.NumPoints() != line.NumPoints() {
		t.Error("upsampling changed the line")
	}
}

func TestMaxStrength(t *testing.T) {
	cfg := Config{Step: 0.05, MaxSteps: 100}
	line, err := Trace(FieldFunc(radial), vec.New(0.5, 0, 0), cfg, +1)
	if err != nil {
		t.Fatal(err)
	}
	// Strength decays along the radial line, so max is at the seed: 1/0.25.
	want := 4.0
	if math.Abs(line.MaxStrength()-want) > 1e-9 {
		t.Errorf("MaxStrength = %v, want %v", line.MaxStrength(), want)
	}
}

// linesEqual reports whether two lines match sample for sample.
func linesEqual(a, b *Line) bool {
	if a.NumPoints() != b.NumPoints() || a.Closed != b.Closed {
		return false
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] || a.Tangents[i] != b.Tangents[i] || a.Strengths[i] != b.Strengths[i] {
			return false
		}
	}
	return true
}

// TestTraceAllMatchesSerial: the parallel batch must return exactly
// the lines serial tracing produces, in seed order, at every worker
// count.
func TestTraceAllMatchesSerial(t *testing.T) {
	cfg := Config{Step: 0.05, MaxSteps: 200, CloseLoop: true}
	var seeds []vec.V3
	for i := 0; i < 64; i++ {
		a := float64(i) * 0.37
		seeds = append(seeds, vec.New(0.3+math.Cos(a), math.Sin(a), float64(i%5)*0.1))
	}
	want := make([]*Line, len(seeds))
	for i, s := range seeds {
		l, err := Trace(FieldFunc(circular), s, cfg, +1)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = l
	}
	for _, workers := range []int{1, 2, 4, 8} {
		got, err := TraceAll(FieldFunc(circular), seeds, cfg, +1, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d lines, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if !linesEqual(got[i], want[i]) {
				t.Fatalf("workers=%d: line %d differs from serial trace", workers, i)
			}
		}
	}
}

func TestTraceBothAllMatchesSerial(t *testing.T) {
	cfg := Config{Step: 0.05, MaxSteps: 100, MinMag: 1e-6}
	var seeds []vec.V3
	for i := 0; i < 32; i++ {
		seeds = append(seeds, vec.New(0.5+float64(i)*0.05, 0.2, 0.1))
	}
	for _, workers := range []int{1, 3, 8} {
		got, err := TraceBothAll(FieldFunc(radial), seeds, cfg, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range seeds {
			want, err := TraceBoth(FieldFunc(radial), s, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !linesEqual(got[i], want) {
				t.Fatalf("workers=%d: line %d differs from serial TraceBoth", workers, i)
			}
		}
	}
}

func TestTraceAllValidatesConfig(t *testing.T) {
	if _, err := TraceAll(FieldFunc(uniformX), []vec.V3{{}}, Config{}, +1, 2); err == nil {
		t.Error("accepted invalid config")
	}
	if _, err := TraceBothAll(FieldFunc(uniformX), nil, Config{Step: 0.1, MaxSteps: 1}, 2); err != nil {
		t.Errorf("empty seed set errored: %v", err)
	}
}

// BenchmarkTraceAll measures batch integration throughput over
// independent seeds at several worker counts.
func BenchmarkTraceAll(b *testing.B) {
	cfg := Config{Step: 0.02, MaxSteps: 400, CloseLoop: true}
	seeds := make([]vec.V3, 256)
	for i := range seeds {
		a := float64(i) * 0.11
		seeds[i] = vec.New(1+0.5*math.Cos(a), 0.5*math.Sin(a), 0)
	}
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := TraceAll(FieldFunc(circular), seeds, cfg, +1, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
