package lineio

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fieldline"
	"repro/internal/vec"
)

func makeLines(n, pts int) []*fieldline.Line {
	lines := make([]*fieldline.Line, n)
	for i := range lines {
		l := &fieldline.Line{Closed: i%3 == 0}
		for j := 0; j < pts; j++ {
			t := float64(j) * 0.1
			l.Points = append(l.Points, vec.New(math.Cos(t+float64(i)), math.Sin(t), t))
			l.Tangents = append(l.Tangents, vec.New(-math.Sin(t), math.Cos(t), 1).Norm())
			l.Strengths = append(l.Strengths, 1+math.Sin(t))
		}
		lines[i] = l
	}
	return lines
}

func TestRoundTrip(t *testing.T) {
	lines := makeLines(10, 50)
	var buf bytes.Buffer
	if err := Write(&buf, lines); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if int64(buf.Len()) != LinesBytes(lines) {
		t.Errorf("encoded %d bytes, LinesBytes says %d", buf.Len(), LinesBytes(lines))
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(got) != len(lines) {
		t.Fatalf("read %d lines, want %d", len(got), len(lines))
	}
	for i, l := range got {
		if l.Closed != lines[i].Closed {
			t.Errorf("line %d closed flag lost", i)
		}
		if l.NumPoints() != lines[i].NumPoints() {
			t.Fatalf("line %d has %d points, want %d", i, l.NumPoints(), lines[i].NumPoints())
		}
		for j := range l.Points {
			// Single-precision round trip.
			if l.Points[j].Dist(lines[i].Points[j]) > 1e-6 {
				t.Fatalf("line %d point %d drifted: %v vs %v", i, j, l.Points[j], lines[i].Points[j])
			}
			if math.Abs(l.Strengths[j]-lines[i].Strengths[j]) > 1e-6 {
				t.Fatalf("line %d strength %d drifted", i, j)
			}
		}
	}
}

func TestTangentsRecomputed(t *testing.T) {
	lines := makeLines(1, 100)
	var buf bytes.Buffer
	if err := Write(&buf, lines); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	l := got[0]
	if len(l.Tangents) != l.NumPoints() {
		t.Fatalf("tangent count %d != point count %d", len(l.Tangents), l.NumPoints())
	}
	for i, tg := range l.Tangents {
		if math.Abs(tg.Len()-1) > 1e-9 {
			t.Fatalf("tangent %d not unit: %v", i, tg)
		}
		// Central-difference tangents approximate the analytic ones.
		if tg.Dot(lines[0].Tangents[i]) < 0.95 {
			t.Fatalf("tangent %d deviates from analytic: %v vs %v", i, tg, lines[0].Tangents[i])
		}
	}
}

func TestDetectsCorruption(t *testing.T) {
	lines := makeLines(5, 30)
	var buf bytes.Buffer
	if err := Write(&buf, lines); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)/2] ^= 0x3C
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Error("corrupted file accepted")
	}
}

func TestRejectsBadMagic(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("garbage data here..."))); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestEmptySet(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty set read back %d lines", len(got))
	}
}

// C6: the storage saving of pre-integrated lines vs raw field data.
// At the paper's 12-cell scale (1.6M elements, ~80MB/step), a typical
// interactive line budget (500 lines x 300 points) stores in ~2.4MB —
// a factor ~32, consistent with the paper's "typical saving is about a
// factor of 25".
func TestLineStorageSaving(t *testing.T) {
	lines := makeLines(500, 300)
	lineBytes := LinesBytes(lines)
	rawBytes := int64(1_600_000) * 48
	factor := SavingFactor(rawBytes, lineBytes)
	if factor < 20 || factor > 45 {
		t.Errorf("saving factor %.1f, want in [20, 45] (paper: ~25)", factor)
	}
}

func TestSavingFactorZeroDenominator(t *testing.T) {
	if SavingFactor(100, 0) != 0 {
		t.Error("zero line bytes should yield 0")
	}
}

func TestFileRoundTrip(t *testing.T) {
	lines := makeLines(3, 20)
	path := t.TempDir() + "/lines.acfl"
	if err := WriteFile(path, lines); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Errorf("read %d lines", len(got))
	}
}

// Property: arbitrary line sets survive the round trip within
// single-precision tolerance, preserving counts and closure flags.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, nLines, nPts uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nLines%8) + 1
		pts := int(nPts%40) + 2
		in := make([]*fieldline.Line, n)
		for i := range in {
			l := &fieldline.Line{Closed: rng.Intn(2) == 0}
			for j := 0; j < pts; j++ {
				l.Points = append(l.Points, vec.New(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()))
				l.Tangents = append(l.Tangents, vec.New(1, 0, 0))
				l.Strengths = append(l.Strengths, rng.Float64())
			}
			in[i] = l
		}
		var buf bytes.Buffer
		if err := Write(&buf, in); err != nil {
			return false
		}
		out, err := Read(&buf)
		if err != nil || len(out) != n {
			return false
		}
		for i := range out {
			if out[i].Closed != in[i].Closed || out[i].NumPoints() != pts {
				return false
			}
			for j := range out[i].Points {
				if out[i].Points[j].Dist(in[i].Points[j]) > 1e-5 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
