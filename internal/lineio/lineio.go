// Package lineio stores pre-integrated field lines compactly — the
// strategy that makes the paper's time-varying field visualization
// feasible at all: "Storing the precomputed field lines rather than
// the raw data can significantly cut down the data storage and
// transfer requirements ... The typical saving is about a factor of
// 25, which would allow many time steps of electromagnetic field lines
// to reside in memory for interactive viewing." For the 12-cell
// structure, storing raw fields would need ~26 TB (§3.4); storing
// lines makes the data set tractable.
//
// Lines are stored in single precision (positions, tangents are
// recomputed on load from point differences, strengths kept) with a
// per-file CRC-32.
package lineio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/fieldline"
	"repro/internal/vec"
)

var magic = [4]byte{'A', 'C', 'F', 'L'}

const version = 1

// Write serializes the lines to w.
func Write(w io.Writer, lines []*fieldline.Line) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	crc := crc32.NewIEEE()
	mw := io.MultiWriter(bw, crc)
	le := binary.LittleEndian
	if _, err := mw.Write(magic[:]); err != nil {
		return fmt.Errorf("lineio: writing magic: %w", err)
	}
	put := func(v any) error { return binary.Write(mw, le, v) }
	if err := put(uint32(version)); err != nil {
		return err
	}
	if err := put(uint32(len(lines))); err != nil {
		return err
	}
	for _, l := range lines {
		if err := put(uint32(l.NumPoints())); err != nil {
			return err
		}
		closed := uint8(0)
		if l.Closed {
			closed = 1
		}
		if err := put(closed); err != nil {
			return err
		}
		for i, p := range l.Points {
			rec := [4]float32{float32(p.X), float32(p.Y), float32(p.Z), float32(l.Strengths[i])}
			if err := put(rec); err != nil {
				return err
			}
		}
	}
	if err := binary.Write(bw, le, crc.Sum32()); err != nil {
		return err
	}
	return bw.Flush()
}

// Read deserializes lines written by Write, recomputing unit tangents
// from central differences of the stored points.
func Read(r io.Reader) ([]*fieldline.Line, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	crc := crc32.NewIEEE()
	tr := io.TeeReader(br, crc)
	le := binary.LittleEndian
	var m [4]byte
	if _, err := io.ReadFull(tr, m[:]); err != nil {
		return nil, fmt.Errorf("lineio: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("lineio: bad magic %q", m[:])
	}
	get := func(v any) error { return binary.Read(tr, le, v) }
	var ver, count uint32
	if err := get(&ver); err != nil {
		return nil, err
	}
	if ver != version {
		return nil, fmt.Errorf("lineio: unsupported version %d", ver)
	}
	if err := get(&count); err != nil {
		return nil, err
	}
	if count > 1<<28 {
		return nil, fmt.Errorf("lineio: implausible line count %d", count)
	}
	lines := make([]*fieldline.Line, 0, count)
	for li := uint32(0); li < count; li++ {
		var n uint32
		if err := get(&n); err != nil {
			return nil, fmt.Errorf("lineio: reading line %d header: %w", li, err)
		}
		if n > 1<<26 {
			return nil, fmt.Errorf("lineio: implausible point count %d", n)
		}
		var closed uint8
		if err := get(&closed); err != nil {
			return nil, err
		}
		l := &fieldline.Line{Closed: closed != 0}
		for i := uint32(0); i < n; i++ {
			var rec [4]float32
			if err := get(&rec); err != nil {
				return nil, fmt.Errorf("lineio: reading line %d point %d: %w", li, i, err)
			}
			l.Points = append(l.Points, vecFrom(rec))
			l.Strengths = append(l.Strengths, float64(rec[3]))
		}
		recomputeTangents(l)
		lines = append(lines, l)
	}
	want := crc.Sum32()
	var got uint32
	if err := binary.Read(br, le, &got); err != nil {
		return nil, fmt.Errorf("lineio: reading checksum: %w", err)
	}
	if got != want {
		return nil, fmt.Errorf("lineio: checksum mismatch (file %08x, computed %08x)", got, want)
	}
	return lines, nil
}

// WriteFile / ReadFile are the file-path conveniences.
func WriteFile(path string, lines []*fieldline.Line) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("lineio: %w", err)
	}
	defer f.Close()
	if err := Write(f, lines); err != nil {
		return err
	}
	return f.Close()
}

// ReadFile reads a line file written by WriteFile.
func ReadFile(path string) ([]*fieldline.Line, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("lineio: %w", err)
	}
	defer f.Close()
	return Read(f)
}

// LinesBytes returns the exact encoded size of the given lines.
func LinesBytes(lines []*fieldline.Line) int64 {
	total := int64(4 + 4 + 4 + 4) // magic, version, count, crc
	for _, l := range lines {
		total += 4 + 1 + int64(l.NumPoints())*16
	}
	return total
}

// SavingFactor returns rawFieldBytes / lineBytes — the paper's
// "typical saving is about a factor of 25" metric.
func SavingFactor(rawFieldBytes, lineBytes int64) float64 {
	if lineBytes == 0 {
		return 0
	}
	return float64(rawFieldBytes) / float64(lineBytes)
}

func vecFrom(rec [4]float32) vec.V3 {
	return vec.New(float64(rec[0]), float64(rec[1]), float64(rec[2]))
}

// recomputeTangents rebuilds unit tangents from central differences of
// the stored points — tangents are derivable data, so the file format
// does not store them (part of the compactness).
func recomputeTangents(l *fieldline.Line) {
	n := len(l.Points)
	l.Tangents = make([]vec.V3, n)
	for i := 0; i < n; i++ {
		var d vec.V3
		switch {
		case n == 1:
			d = vec.New(1, 0, 0)
		case i == 0:
			d = l.Points[1].Sub(l.Points[0])
		case i == n-1:
			d = l.Points[n-1].Sub(l.Points[n-2])
		default:
			d = l.Points[i+1].Sub(l.Points[i-1])
		}
		l.Tangents[i] = d.Norm()
	}
}
