package seeding

import (
	"math"
	"testing"

	"repro/internal/fieldline"
	"repro/internal/hexmesh"
	"repro/internal/vec"
)

// boxMesh returns an all-vacuum box mesh.
func boxMesh(t *testing.T, n int) *hexmesh.Mesh {
	t.Helper()
	m, err := hexmesh.BuildBox(vec.Box(vec.New(0, 0, 0), vec.New(1, 1, 1)), n, n, n)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// uniformZ flows along +z everywhere.
func uniformZ(p vec.V3) vec.V3 { return vec.New(0, 0, 1) }

// splitField is strong in the upper half (y > 0.5), weak below.
func splitField(p vec.V3) vec.V3 {
	if p.Y > 0.5 {
		return vec.New(0, 0, 4)
	}
	return vec.New(0, 0, 1)
}

func defaultCfg(lines int) Config {
	return Config{
		TotalLines: lines,
		Trace:      fieldline.Config{Step: 0.02, MaxSteps: 200},
		Seed:       12345,
	}
}

func TestConfigValidate(t *testing.T) {
	if defaultCfg(10).Validate() != nil {
		t.Error("good config rejected")
	}
	bad := defaultCfg(0)
	if bad.Validate() == nil {
		t.Error("accepted zero lines")
	}
	bad = defaultCfg(10)
	bad.MinIntensity = 2
	if bad.Validate() == nil {
		t.Error("accepted min intensity > 1")
	}
	bad = defaultCfg(10)
	bad.Trace.Step = 0
	if bad.Validate() == nil {
		t.Error("accepted zero trace step")
	}
}

func TestSeedLinesProducesBudget(t *testing.T) {
	m := boxMesh(t, 6)
	res, err := SeedLines(m, fieldline.FieldFunc(uniformZ),
		func(e int) float64 { return 1 }, defaultCfg(50))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Lines) != 50 {
		t.Errorf("produced %d lines, want 50", len(res.Lines))
	}
	if len(res.SeedElement) != len(res.Lines) {
		t.Error("seed element record length mismatch")
	}
}

func TestSeedLinesZeroFieldErrors(t *testing.T) {
	m := boxMesh(t, 4)
	_, err := SeedLines(m, fieldline.FieldFunc(func(vec.V3) vec.V3 { return vec.V3{} }),
		func(e int) float64 { return 0 }, defaultCfg(10))
	if err == nil {
		t.Error("zero field accepted")
	}
}

// The paper's central seeding property: at moderate line counts, line
// density tracks field magnitude — "the density of field lines is
// approximately proportional to the local magnitude of the underlying
// field". With a field 4x stronger in the upper half and a line budget
// before saturation, upper elements see ~4x the line visits. (At very
// large budgets the greedy fills weak regions too — "the less strong
// regions start to fill in" — so the ratio is budget-dependent by
// design; this test probes the proportional regime.)
func TestSeedingDensityProportionality(t *testing.T) {
	m := boxMesh(t, 6)
	field := fieldline.FieldFunc(splitField)
	intensity := func(e int) float64 { return splitField(m.Elements[e].Center).Len() }
	res, err := SeedLines(m, field, intensity, defaultCfg(40))
	if err != nil {
		t.Fatal(err)
	}
	var upper, lower float64
	for e := range m.Elements {
		if m.Elements[e].Center.Y > 0.5 {
			upper += res.Visits[e]
		} else {
			lower += res.Visits[e]
		}
	}
	if lower == 0 {
		t.Fatal("no lines in the weak half")
	}
	ratio := upper / lower
	if ratio < 2.5 || ratio > 8 {
		t.Errorf("upper/lower visit ratio %.2f, want ~4 (field ratio)", ratio)
	}
}

// As the budget grows past the proportional regime, weak regions fill
// in — the incremental-animation behavior of Fig 7 ("as more field
// lines are added ... the less strong regions start to fill in").
func TestWeakRegionsFillInWithBudget(t *testing.T) {
	m := boxMesh(t, 6)
	intensity := func(e int) float64 { return splitField(m.Elements[e].Center).Len() }
	lowerShare := func(budget int) float64 {
		res, err := SeedLines(m, fieldline.FieldFunc(splitField), intensity, defaultCfg(budget))
		if err != nil {
			t.Fatal(err)
		}
		lowSeeds := 0
		for _, se := range res.SeedElement {
			if m.Elements[se].Center.Y <= 0.5 {
				lowSeeds++
			}
		}
		return float64(lowSeeds) / float64(len(res.Lines))
	}
	early := lowerShare(20)
	late := lowerShare(200)
	if late <= early {
		t.Errorf("weak-region seed share did not grow: %.2f (20 lines) -> %.2f (200 lines)", early, late)
	}
}

// The incremental property: the first lines seed in the strongest
// region ("the lines corresponding to the highest magnitude field
// regions being loaded first").
func TestStrongRegionsSeededFirst(t *testing.T) {
	m := boxMesh(t, 8)
	intensity := func(e int) float64 { return splitField(m.Elements[e].Center).Len() }
	res, err := SeedLines(m, fieldline.FieldFunc(splitField), intensity, defaultCfg(100))
	if err != nil {
		t.Fatal(err)
	}
	// The first 10 seeds must all be in the strong half.
	for i := 0; i < 10 && i < len(res.SeedElement); i++ {
		if m.Elements[res.SeedElement[i]].Center.Y <= 0.5 {
			t.Errorf("seed %d placed in the weak half", i)
		}
	}
}

// Prefix supersets: "the set of field lines in each image in the
// sequence is a superset of those field lines in the preceding image".
func TestSeedingPrefixSuperset(t *testing.T) {
	m := boxMesh(t, 6)
	res, err := SeedLines(m, fieldline.FieldFunc(uniformZ),
		func(e int) float64 { return 1 }, defaultCfg(40))
	if err != nil {
		t.Fatal(err)
	}
	p10 := res.Prefix(10)
	p20 := res.Prefix(20)
	for i := range p10 {
		if p10[i] != p20[i] {
			t.Fatalf("prefix 20 does not extend prefix 10 at %d", i)
		}
	}
	if len(res.Prefix(10000)) != len(res.Lines) {
		t.Error("oversized prefix not clamped")
	}
	if len(res.Prefix(-1)) != 0 {
		t.Error("negative prefix not clamped")
	}
}

// Density correlation must be positive and improve (or stay high) as
// more lines load — the "always nearly correct" claim of §3.2.
func TestDensityCorrelationAtPrefixes(t *testing.T) {
	// Coarse mesh: desired counts of a few lines per element, the
	// regime where per-element correlation is meaningful.
	m := boxMesh(t, 4)
	intensity := func(e int) float64 { return splitField(m.Elements[e].Center).Len() }
	res, err := SeedLines(m, fieldline.FieldFunc(splitField), intensity, defaultCfg(400))
	if err != nil {
		t.Fatal(err)
	}
	full := res.DensityCorrelation(m, len(res.Lines))
	half := res.DensityCorrelation(m, len(res.Lines)/2)
	if full < 0.7 {
		t.Errorf("full correlation %.3f too weak", full)
	}
	if half < 0.3 {
		t.Errorf("half-prefix correlation %.3f too weak for incremental correctness", half)
	}
}

func TestSeedingDeterministic(t *testing.T) {
	m := boxMesh(t, 6)
	run := func() *Result {
		res, err := SeedLines(m, fieldline.FieldFunc(uniformZ),
			func(e int) float64 { return 1 }, defaultCfg(30))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.Lines) != len(b.Lines) {
		t.Fatal("line counts differ")
	}
	for i := range a.Lines {
		if a.SeedElement[i] != b.SeedElement[i] {
			t.Fatalf("seed order differs at %d", i)
		}
		if a.Lines[i].Points[0] != b.Lines[i].Points[0] {
			t.Fatalf("seed points differ at %d", i)
		}
	}
}

func TestLinesStayInsideMesh(t *testing.T) {
	m := boxMesh(t, 6)
	res, err := SeedLines(m, fieldline.FieldFunc(uniformZ),
		func(e int) float64 { return 1 }, defaultCfg(30))
	if err != nil {
		t.Fatal(err)
	}
	for li, line := range res.Lines {
		for _, p := range line.Points {
			if !m.Inside(p) {
				t.Fatalf("line %d left the mesh at %v", li, p)
			}
		}
	}
}

func TestMinIntensityExcludesWeakSeeds(t *testing.T) {
	m := boxMesh(t, 8)
	intensity := func(e int) float64 { return splitField(m.Elements[e].Center).Len() }
	cfg := defaultCfg(60)
	cfg.MinIntensity = 0.5 // weak half (intensity 1 of max 4) excluded
	res, err := SeedLines(m, fieldline.FieldFunc(splitField), intensity, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, se := range res.SeedElement {
		if m.Elements[se].Center.Y <= 0.5 {
			t.Errorf("line %d seeded in excluded weak region", i)
		}
	}
}

func TestSeedingOnCavityMesh(t *testing.T) {
	// End-to-end sanity on real cavity geometry with an analytic
	// standing-wave-like field.
	cav := hexmesh.DefaultCavity(6)
	m, err := hexmesh.BuildCavity(cav)
	if err != nil {
		t.Fatal(err)
	}
	field := fieldline.FieldFunc(func(p vec.V3) vec.V3 {
		return vec.New(0, 0, math.Cos(math.Pi*p.Z/cav.TotalLength()))
	})
	intensity := func(e int) float64 { return field.At(m.Elements[e].Center).Len() }
	cfg := defaultCfg(40)
	cfg.Trace.Step = m.MinSpacing() / 2
	res, err := SeedLines(m, field, intensity, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Lines) == 0 {
		t.Fatal("no lines on cavity mesh")
	}
	for li, line := range res.Lines {
		for _, p := range line.Points {
			if !m.Inside(p) {
				t.Fatalf("line %d escaped into conductor at %v", li, p)
			}
		}
	}
}
