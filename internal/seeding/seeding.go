// Package seeding implements the paper's §3.2 seeding strategy and
// incremental visualization ordering: seeds are selected "so that the
// local density anywhere in the final distribution of field lines is
// approximately proportional to the local magnitude of the underlying
// field", which physicists read directly as flux density.
//
// The algorithm is the paper's, verbatim:
//
//  1. each element's desired number of field lines is the average
//     field intensity at the element times its volume, rescaled so the
//     total equals the requested line budget;
//  2. repeatedly select the element that most needs an additional
//     line, pick a random seed point inside it, and integrate the line;
//  3. as the line visits elements, decrement their desired counts;
//  4. stop when the total desired number of lines has been produced.
//
// Because the neediest element is always chosen first, "the images
// that result from rendering the first n field lines are always nearly
// correct in showing field line density proportional to the magnitude
// of the underlying field" — the incremental-loading property of
// Figs 7 and 10, which the tests verify.
package seeding

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/fieldline"
	"repro/internal/hexmesh"
	"repro/internal/vec"
)

// Config controls a seeding run.
type Config struct {
	// TotalLines is the maximum number of field lines to pre-integrate.
	TotalLines int
	// Trace configures the per-line integration.
	Trace fieldline.Config
	// Seed makes seed-point selection deterministic.
	Seed uint64
	// MinIntensity excludes elements whose intensity is below this
	// fraction of the maximum from receiving seeds (they can still be
	// visited by lines integrated from elsewhere).
	MinIntensity float64
	// Bidirectional integrates each line both with and against the
	// field (electric lines span surface to surface).
	Bidirectional bool
}

// Validate reports the first problem with the configuration.
func (c Config) Validate() error {
	if c.TotalLines < 1 {
		return fmt.Errorf("seeding: total lines %d must be >= 1", c.TotalLines)
	}
	if c.MinIntensity < 0 || c.MinIntensity > 1 {
		return fmt.Errorf("seeding: min intensity %g outside [0,1]", c.MinIntensity)
	}
	return c.Trace.Validate()
}

// Result is an ordered set of pre-integrated field lines. Lines[0:n]
// for any n is the correct n-line incremental rendering: the set of
// lines in each prefix is by construction a superset of every shorter
// prefix, and density tracks field magnitude at every prefix.
type Result struct {
	Lines []*fieldline.Line
	// SeedElement records which element each line was seeded in.
	SeedElement []int
	// Visits counts, per element, how many lines passed through it.
	Visits []float64
	// Desired is the target line count per element after rescaling.
	Desired []float64
}

// need is a heap entry; stale entries are discarded lazily.
type need struct {
	element  int
	priority float64
}

type needHeap []need

func (h needHeap) Len() int            { return len(h) }
func (h needHeap) Less(i, j int) bool  { return h[i].priority > h[j].priority }
func (h needHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *needHeap) Push(x interface{}) { *h = append(*h, x.(need)) }
func (h *needHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// SeedLines runs the strategy over the mesh with per-element intensity
// given by intensity(e) (typically |E| at the element center) and the
// field to integrate.
func SeedLines(mesh *hexmesh.Mesh, field fieldline.Field, intensity func(e int) float64, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := mesh.NumElements()
	if n == 0 {
		return nil, fmt.Errorf("seeding: empty mesh")
	}

	// Step 1: desired lines per element ∝ intensity x volume.
	desired := make([]float64, n)
	var total, maxI float64
	for e := 0; e < n; e++ {
		iv := intensity(e)
		if iv < 0 {
			iv = 0
		}
		if iv > maxI {
			maxI = iv
		}
		desired[e] = iv * mesh.Elements[e].Volume()
		total += desired[e]
	}
	if total == 0 {
		return nil, fmt.Errorf("seeding: field is identically zero")
	}
	scale := float64(cfg.TotalLines) / total
	for e := range desired {
		desired[e] *= scale
	}

	res := &Result{
		Visits:  make([]float64, n),
		Desired: append([]float64(nil), desired...),
	}

	// The trace domain is the vacuum region intersected with any
	// caller-provided domain.
	trace := cfg.Trace
	callerDomain := trace.Domain
	trace.Domain = func(p vec.V3) bool {
		if !mesh.Inside(p) {
			return false
		}
		if callerDomain != nil {
			return callerDomain(p)
		}
		return true
	}

	// Lazy max-heap over need = desired - visits.
	h := make(needHeap, 0, n)
	for e := 0; e < n; e++ {
		if desired[e] > 0 && intensity(e) >= cfg.MinIntensity*maxI {
			h = append(h, need{e, desired[e]})
		}
	}
	heap.Init(&h)

	rngState := cfg.Seed | 1
	for len(res.Lines) < cfg.TotalLines && h.Len() > 0 {
		top := heap.Pop(&h).(need)
		cur := desired[top.element] - res.Visits[top.element]
		if top.priority != cur {
			// Stale priority (the element was visited by another line
			// since it was pushed): reinsert with the current need.
			heap.Push(&h, need{top.element, cur})
			continue
		}

		// Step 2: random seed point inside the neediest element.
		seedPt := mesh.RandomPointIn(top.element, &rngState)
		var line *fieldline.Line
		var err error
		if cfg.Bidirectional {
			line, err = fieldline.TraceBoth(field, seedPt, trace)
		} else {
			line, err = fieldline.Trace(field, seedPt, trace, +1)
		}
		if err != nil {
			return nil, err
		}
		if line.NumPoints() < 2 {
			// Degenerate seed (field null at the sample); charge the
			// element one visit so repeated selection converges away.
			res.Visits[top.element]++
			heap.Push(&h, need{top.element, desired[top.element] - res.Visits[top.element]})
			continue
		}

		// Step 3: decrement desired counts along the path (each element
		// at most once per line).
		visited := map[int]bool{}
		for _, p := range line.Points {
			if e := mesh.Locate(p); e >= 0 && !visited[e] {
				visited[e] = true
				res.Visits[e]++
			}
		}
		if !visited[top.element] {
			res.Visits[top.element]++
		}
		// Reinsert with the updated (possibly negative) need: the paper
		// stops at the total line budget, not when needs reach zero, so
		// relative need keeps steering seeds toward under-served strong
		// regions for the whole run.
		heap.Push(&h, need{top.element, desired[top.element] - res.Visits[top.element]})

		res.Lines = append(res.Lines, line)
		res.SeedElement = append(res.SeedElement, top.element)
	}
	return res, nil
}

// Prefix returns the first n lines — one frame of the incremental
// loading animation of Figs 7 and 10. n is clamped to the available
// count.
func (r *Result) Prefix(n int) []*fieldline.Line {
	if n > len(r.Lines) {
		n = len(r.Lines)
	}
	if n < 0 {
		n = 0
	}
	return r.Lines[:n]
}

// DensityCorrelation measures how well the achieved per-element visit
// counts of the first n lines track the desired distribution: it
// returns the Pearson correlation between visits(prefix) and Desired
// over elements with nonzero desire. Values near 1 mean the prefix
// images show "field line density proportional to the magnitude of the
// underlying field".
func (r *Result) DensityCorrelation(mesh *hexmesh.Mesh, n int) float64 {
	visits := make([]float64, len(r.Desired))
	for li := 0; li < n && li < len(r.Lines); li++ {
		seen := map[int]bool{}
		for _, p := range r.Lines[li].Points {
			if e := mesh.Locate(p); e >= 0 && !seen[e] {
				seen[e] = true
				visits[e]++
			}
		}
	}
	return pearson(visits, r.Desired)
}

// pearson computes the correlation coefficient between x and y.
func pearson(x, y []float64) float64 {
	n := float64(len(x))
	if n == 0 {
		return 0
	}
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / (math.Sqrt(vx) * math.Sqrt(vy))
}
