package repro

import (
	"path/filepath"
	"testing"

	"repro/internal/beam"
	"repro/internal/core"
	"repro/internal/hybrid"
	"repro/internal/lineio"
	"repro/internal/pario"
	"repro/internal/remote"
	"repro/internal/sos"
	"repro/internal/vec"
	"repro/internal/viewer"
)

// TestFullParticlePipelineOnDisk exercises the exact chain the CLI
// tools implement: simulate -> frame file -> partition -> two-part
// tree files -> extract -> hybrid file -> render PNG, with every
// intermediate going through disk.
func TestFullParticlePipelineOnDisk(t *testing.T) {
	dir := t.TempDir()

	// beamsim
	cfg := beam.DefaultConfig(8000)
	sim, err := beam.NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.RunPeriods(5)
	framePath := filepath.Join(dir, "beam_0000.acpf")
	if err := pario.WriteFrameFile(framePath, sim.Snapshot()); err != nil {
		t.Fatal(err)
	}

	// partition
	frame, err := pario.ReadFrameFile(framePath)
	if err != nil {
		t.Fatal(err)
	}
	pp := core.NewParticlePipeline(8000)
	tree, err := pp.Partition(frame)
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(dir, "frame0_xyz")
	if err := pario.WriteTreeFiles(base, tree); err != nil {
		t.Fatal(err)
	}

	// extract
	tree2, err := pario.ReadTreeFiles(base)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := hybrid.Extract(tree2, hybrid.ExtractConfig{VolumeRes: 16, Budget: 1500})
	if err != nil {
		t.Fatal(err)
	}
	hybridPath := filepath.Join(dir, "frame0.achy")
	if err := rep.WriteFile(hybridPath); err != nil {
		t.Fatal(err)
	}

	// hybridview
	rep2, err := hybrid.ReadFile(hybridPath)
	if err != nil {
		t.Fatal(err)
	}
	tf, err := core.DefaultTF(rep2)
	if err != nil {
		t.Fatal(err)
	}
	fb, rast, vr, err := core.RenderFrame(rep2, tf, 96, 96, vec.New(0.4, 0.3, 1))
	if err != nil {
		t.Fatal(err)
	}
	if rast.PointCount == 0 || vr.SampleCount == 0 || fb.CoveredPixels(0.005) == 0 {
		t.Fatalf("render degenerate: points %d, samples %d, coverage %d",
			rast.PointCount, vr.SampleCount, fb.CoveredPixels(0.005))
	}
	if err := fb.WritePNG(filepath.Join(dir, "frame0.png")); err != nil {
		t.Fatal(err)
	}
}

// TestFullFieldPipelineOnDisk: solve -> trace -> line file -> reload ->
// render with all techniques.
func TestFullFieldPipelineOnDisk(t *testing.T) {
	dir := t.TempDir()
	fp := core.NewFieldPipeline(6, 30)
	frame, err := fp.Solve(4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fp.TraceE(frame)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "lines.acfl")
	if err := lineio.WriteFile(path, res.Lines); err != nil {
		t.Fatal(err)
	}
	lines, err := lineio.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != len(res.Lines) {
		t.Fatalf("reloaded %d lines, wrote %d", len(lines), len(res.Lines))
	}
	for _, tech := range sos.AllTechniques() {
		fb, st, err := fp.RenderLines(lines, tech, 64, 64, vec.New(0.8, 0.45, 0.9))
		if err != nil {
			t.Fatalf("%v: %v", tech, err)
		}
		if fb.CoveredPixels(0.005) == 0 {
			t.Errorf("%v: black frame from reloaded lines", tech)
		}
		_ = st
	}
}

// TestRemoteViewerIntegration: hybrid frames served over TCP into the
// viewer's LRU cache, stepped by a Player.
func TestRemoteViewerIntegration(t *testing.T) {
	pp := core.NewParticlePipeline(6000)
	pp.Extract.VolumeRes = 12
	sim, err := pp.NewSim()
	if err != nil {
		t.Fatal(err)
	}
	var frames []*hybrid.Representation
	for f := 0; f < 4; f++ {
		sim.RunPeriods(2)
		rep, err := pp.ProcessFrame(sim.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, rep)
	}
	store, err := remote.NewMemStore(frames)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := remote.NewService("127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := remote.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	cache, err := viewer.NewCache(len(frames), 1<<30, cli.FrameLoader())
	if err != nil {
		t.Fatal(err)
	}
	// Prefetch 2 ahead: the multiplexed session overlaps the WAN
	// fetches the prefetcher issues.
	player := viewer.NewPlayer(cache, 2)
	for i := 0; i < 4; i++ {
		rep, err := player.Frame()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if rep.NumPoints() != frames[i].NumPoints() {
			t.Errorf("frame %d: %d points, want %d", i, rep.NumPoints(), frames[i].NumPoints())
		}
		if i < 3 {
			if _, err := player.Step(1); err != nil {
				t.Fatal(err)
			}
		}
	}
	player.Wait()
	// Stepping back over visited frames is all cache hits.
	missesBefore := cache.Stats().Misses
	for i := 0; i < 3; i++ {
		if _, err := player.Step(-1); err != nil {
			t.Fatal(err)
		}
	}
	player.Wait()
	if misses := cache.Stats().Misses; misses != missesBefore {
		t.Errorf("revisiting frames caused %d extra loads", misses-missesBefore)
	}
}

// TestPlotTypeConversionMatchesDirectPartition: converting a
// partitioned tree to a new plot type yields the same leaf structure
// as partitioning the original data directly under that plot type.
func TestPlotTypeConversionMatchesDirectPartition(t *testing.T) {
	pp := core.NewParticlePipeline(5000)
	sim, err := pp.NewSim()
	if err != nil {
		t.Fatal(err)
	}
	sim.RunPeriods(3)
	frame := sim.Snapshot()

	spatial, err := pp.Partition(frame)
	if err != nil {
		t.Fatal(err)
	}
	momAxes := [3]beam.Axis{beam.AxisPX, beam.AxisPY, beam.AxisPZ}
	converted, err := core.ConvertPlotType(spatial, frame.E, momAxes, pp.Tree)
	if err != nil {
		t.Fatal(err)
	}
	ppMom := core.NewParticlePipeline(5000)
	ppMom.Axes = momAxes
	direct, err := ppMom.Partition(frame)
	if err != nil {
		t.Fatal(err)
	}
	// Same number of leaves, same halo counts at matched thresholds.
	if converted.NumLeaves() != direct.NumLeaves() {
		t.Errorf("leaf counts differ: converted %d, direct %d", converted.NumLeaves(), direct.NumLeaves())
	}
	for _, budget := range []int64{100, 1000, 4000} {
		th := direct.ThresholdForBudget(budget)
		if got, want := converted.HaloCount(th), direct.HaloCount(th); got != want {
			t.Errorf("budget %d: converted halo %d, direct %d", budget, got, want)
		}
	}
}

// TestManyFramesFitInMemory verifies the §2.5 economics at test scale:
// the hybrid frames are small enough that the cache holds many, while
// the same budget would hold only ~2 raw frames.
func TestManyFramesFitInMemory(t *testing.T) {
	pp := core.NewParticlePipeline(10000)
	pp.Extract.VolumeRes = 16
	sim, err := pp.NewSim()
	if err != nil {
		t.Fatal(err)
	}
	sim.RunPeriods(3)
	rep, err := pp.ProcessFrame(sim.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	raw := pario.FrameBytes(10000)
	budget := 2 * raw // a memory that fits exactly 2 raw frames
	perHybrid := rep.SizeBytes()
	fit := budget / perHybrid
	if fit < 5 {
		t.Errorf("only %d hybrid frames fit in a 2-raw-frame budget; want >= 5 (paper: ~10 vs 2)", fit)
	}
}
