// Command vizworker hosts a compute worker for distributed stage
// execution: it serves the service protocol's Compute verb with the
// built-in stage kernels (hybrid extraction, field-line tracing, and
// the sort-last partial render render.partial.v1), so a pipeline
// elsewhere can place its heavy per-frame compute on this process with
// core.StreamOptions.ExtractAddr / ExtractAddrs / RenderAddrs — the
// paper's split of simulation and visualization compute across
// machines. Workers advertise their kernel set over the Kernels verb,
// which is how a fleet verifies provisioning before striping frames
// here; render fleets use the same check to confirm a worker can
// produce depth-augmented partial framebuffers before sub-volume
// renders are fanned to it.
//
// Usage:
//
//	vizworker -addr 127.0.0.1:9921 [-drain-timeout 30s]
//
// The chosen address is printed as "vizworker: serving ... on ADDR" —
// with -addr 127.0.0.1:0 the kernel-chosen port appears there, which
// is how the multi-process examples (examples/distextract,
// examples/distrender) find their child workers.
//
// On SIGINT or SIGTERM the worker drains instead of dying mid-frame:
// it stops accepting connections, answers new Compute requests with a
// retryable "unavailable" error (so a fleet re-dispatches them to
// surviving workers), finishes the kernels already in flight (bounded
// by -drain-timeout), and exits. A second signal forces an immediate
// stop.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/remote"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vizworker: ")
	addr := flag.String("addr", "127.0.0.1:9921", "listen address (use :0 for an ephemeral port)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight kernels on SIGINT/SIGTERM")
	flag.Parse()

	w, err := remote.NewWorker(*addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vizworker: serving kernels [%s] on %s — Ctrl-C to stop\n",
		strings.Join(w.Kernels(), " "), w.Addr())

	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	sig := <-ch
	log.Printf("%s: draining (in-flight kernels finish, new requests refused; again to force)", sig)

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	go func() {
		select {
		case sig := <-ch:
			log.Printf("%s: forcing immediate stop", sig)
			cancel()
		case <-ctx.Done():
		}
	}()
	if err := w.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	log.Print("drained")
}
