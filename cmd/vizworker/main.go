// Command vizworker hosts a compute worker for distributed stage
// execution: it serves the service protocol's Compute verb with the
// built-in stage kernels (hybrid extraction), so a pipeline elsewhere
// can place its heavy per-frame compute on this process with
// core.StreamOptions.ExtractAddr — the paper's split of simulation and
// visualization compute across machines.
//
// Usage:
//
//	vizworker -addr 127.0.0.1:9921
//
// The chosen address is printed as "vizworker: serving ... on ADDR" —
// with -addr 127.0.0.1:0 the kernel-chosen port appears there, which
// is how the two-process example (examples/distextract) finds its
// child worker.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"

	"repro/internal/remote"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vizworker: ")
	addr := flag.String("addr", "127.0.0.1:9921", "listen address (use :0 for an ephemeral port)")
	flag.Parse()

	w, err := remote.NewWorker(*addr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vizworker: serving kernels [%s] on %s — Ctrl-C to stop\n",
		strings.Join(w.Kernels(), " "), w.Addr())

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	w.Close()
}
