// Command vizclient is the thin client of the visualization service:
// the program on "a scientist's desk thousands of miles away". It can
// list the server's frames, fetch one and render it locally, ask the
// server to render (shipping a ~kB RLE image instead of a ~MB frame),
// or follow a live in-situ run, rendering every new frame as the
// simulation publishes it.
//
// Usage:
//
//	vizclient -addr HOST:9920 -list
//	vizclient -addr HOST:9920 -fetch 3 -out frame3.png
//	vizclient -addr HOST:9920 -render 3 -quality preview -out frame3.png
//	vizclient -addr HOST:9920 -follow -out live.png
//	vizclient -addr HOST:9920 -follow -delta -out live.png
//
// -bw models the wide-area link in bytes/s (0 = unthrottled), printing
// the transfer economics the hybrid representation is designed around.
// -quality selects the server-render tier: "lossless" (default,
// bit-identical to a local render) or "preview" (quantized 8-bit
// color, several times smaller on the wire). -delta switches follow
// mode from server renders to local renders over XOR-delta frame
// fetches: after the first full frame, each update ships only what
// changed.
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/remote"
	"repro/internal/render"
	"repro/internal/vec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vizclient: ")
	var (
		addr    = flag.String("addr", "127.0.0.1:9920", "service address")
		list    = flag.Bool("list", false, "list the server's frames")
		fetch   = flag.Int("fetch", -1, "fetch this frame and render locally")
		rend    = flag.Int("render", -1, "render this frame server-side")
		follow  = flag.Bool("follow", false, "subscribe and server-render every new frame")
		out     = flag.String("out", "frame.png", "output PNG (follow mode: _NNNN inserted)")
		size    = flag.Int("size", 512, "image size in pixels (square)")
		view    = flag.String("view", "0.4,0.3,1", "view direction dx,dy,dz")
		bw      = flag.Int64("bw", 0, "modeled link bandwidth in bytes/s (0 = unthrottled)")
		quality = flag.String("quality", "lossless", "server render tier: lossless or preview")
		delta   = flag.Bool("delta", false, "follow mode: fetch frames as XOR-deltas and render locally")
	)
	flag.Parse()

	dir, err := parseVec(*view)
	if err != nil {
		log.Fatal(err)
	}
	tier, err := parseQuality(*quality)
	if err != nil {
		log.Fatal(err)
	}
	cli, err := remote.Dial(*addr)
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()
	cli.SetBandwidth(*bw)

	switch {
	case *list:
		li, err := cli.List()
		if err != nil {
			log.Fatal(err)
		}
		mode := "static"
		if li.Live {
			mode = "live"
		}
		fmt.Printf("%s: %d frames (index %d..%d), %s\n", *addr, li.Frames-li.First, li.First, li.Frames-1, mode)

	case *fetch >= 0:
		rep, size2, took, err := cli.FetchFrame(*fetch)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("frame %d: %.2f MB in %v (%.2f MB/s)\n",
			*fetch, float64(size2)/1e6, took, float64(size2)/took.Seconds()/1e6)
		tf, err := core.DefaultTF(rep)
		if err != nil {
			log.Fatal(err)
		}
		fb, _, _, err := core.RenderFrame(rep, tf, *size, *size, dir)
		if err != nil {
			log.Fatal(err)
		}
		writePNG(fb.WritePNG, *out)

	case *rend >= 0:
		fb, wire, took, err := cli.Render(remote.RenderParams{
			Frame: *rend, Width: *size, Height: *size, ViewDir: dir, Quality: tier,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("frame %d: server-rendered, %.3f MB image in %v\n",
			*rend, float64(wire)/1e6, took)
		writePNG(fb.WritePNG, *out)

	case *follow:
		sub, err := cli.Subscribe()
		if err != nil {
			log.Fatal(err)
		}
		defer sub.Close()
		rendered := 0
		baseIdx := -1      // last frame held, the next delta base
		var baseEnc []byte // its wire encoding
		for frames := range sub.Updates {
			if frames == 0 {
				continue
			}
			idx := frames - 1 // latest
			var fb *render.Framebuffer
			var wire int64
			var took time.Duration
			if *delta {
				// Delta mode: pull the frame (as a residual once a base
				// is held) and render locally.
				rep, enc, w, d, err := cli.FetchFrameDelta(idx, baseIdx, baseEnc)
				if err != nil {
					log.Printf("frame %d: %v", idx, err)
					continue
				}
				baseIdx, baseEnc = idx, enc
				tf, err := core.DefaultTF(rep)
				if err != nil {
					log.Fatal(err)
				}
				if fb, _, _, err = core.RenderFrame(rep, tf, *size, *size, dir); err != nil {
					log.Fatal(err)
				}
				wire, took = w, d
			} else {
				var err error
				if fb, wire, took, err = cli.Render(remote.RenderParams{
					Frame: idx, Width: *size, Height: *size, ViewDir: dir, Quality: tier,
				}); err != nil {
					log.Printf("frame %d: %v", idx, err)
					continue
				}
			}
			dst := strings.TrimSuffix(*out, ".png") + fmt.Sprintf("_%04d.png", idx)
			writePNG(fb.WritePNG, dst)
			fmt.Printf("frame %d: %.3f MB on the wire in %v -> %s\n", idx, float64(wire)/1e6, took, dst)
			rendered++
		}
		fmt.Printf("feed closed after %d frames\n", rendered)

	default:
		log.Fatal("one of -list, -fetch, -render or -follow required")
	}
}

func writePNG(write func(string) error, path string) {
	if err := write(path); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}

func parseQuality(s string) (remote.RenderQuality, error) {
	switch s {
	case "lossless":
		return remote.QualityLossless, nil
	case "preview":
		return remote.QualityPreview, nil
	}
	return 0, fmt.Errorf("quality %q must be lossless or preview", s)
}

func parseVec(s string) (vec.V3, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return vec.V3{}, fmt.Errorf("view %q must be dx,dy,dz", s)
	}
	var v [3]float64
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return vec.V3{}, err
		}
		v[i] = f
	}
	return vec.New(v[0], v[1], v[2]), nil
}
