// Command vizclient is the thin client of the visualization service:
// the program on "a scientist's desk thousands of miles away". It can
// list the server's frames, fetch one and render it locally, ask the
// server to render (shipping a ~kB RLE image instead of a ~MB frame),
// or follow a live in-situ run, rendering every new frame as the
// simulation publishes it.
//
// Usage:
//
//	vizclient -addr HOST:9920 -list
//	vizclient -addr HOST:9920 -stats
//	vizclient -addr HOST:9920 -fetch 3 -out frame3.png
//	vizclient -addr HOST:9920 -render 3 -quality preview -out frame3.png
//	vizclient -addr HOST:9920 -follow -out live.png
//	vizclient -addr HOST:9920 -follow -delta -out live.png
//	vizclient -addr HOST:9920 -follow -reconnect -out live.png
//
// -bw models the wide-area link in bytes/s (0 = unthrottled), printing
// the transfer economics the hybrid representation is designed around.
// -quality selects the server-render tier: "lossless" (default,
// bit-identical to a local render) or "preview" (quantized 8-bit
// color, several times smaller on the wire). -delta switches follow
// mode from server renders to local renders over XOR-delta frame
// fetches: after the first full frame, each update ships only what
// changed.
//
// -reconnect wraps the session in a remote.ReconnectClient: a dropped
// connection (or a retryably-refusing overloaded server) is redialed
// with backoff instead of killing the command, and follow mode rides
// the resumed stream — ordered, gapless, bit-identical across
// reconnects. -stats pretty-prints the server's v5 Stats report:
// service counters plus the per-session queue/drop/degrade table.
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/hybrid"
	"repro/internal/remote"
	"repro/internal/render"
	"repro/internal/vec"
)

// session is the verb surface shared by remote.Client and
// remote.ReconnectClient, so every mode below works over either.
type session interface {
	List() (remote.ListInfo, error)
	FetchFrame(i int) (*hybrid.Representation, int64, time.Duration, error)
	Render(p remote.RenderParams) (*render.Framebuffer, int64, time.Duration, error)
	Stats() (remote.StatsReport, error)
	Close() error
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("vizclient: ")
	var (
		addr      = flag.String("addr", "127.0.0.1:9920", "service address")
		list      = flag.Bool("list", false, "list the server's frames")
		fetch     = flag.Int("fetch", -1, "fetch this frame and render locally")
		rend      = flag.Int("render", -1, "render this frame server-side")
		follow    = flag.Bool("follow", false, "subscribe and server-render every new frame")
		out       = flag.String("out", "frame.png", "output PNG (follow mode: _NNNN inserted)")
		size      = flag.Int("size", 512, "image size in pixels (square)")
		view      = flag.String("view", "0.4,0.3,1", "view direction dx,dy,dz")
		bw        = flag.Int64("bw", 0, "modeled link bandwidth in bytes/s (0 = unthrottled)")
		quality   = flag.String("quality", "lossless", "server render tier: lossless or preview")
		delta     = flag.Bool("delta", false, "follow mode: fetch frames as XOR-deltas and render locally")
		reconnect = flag.Bool("reconnect", false, "redial with backoff on connection loss (resumable follow)")
		stats     = flag.Bool("stats", false, "print the server's stats report and session table")
	)
	flag.Parse()

	dir, err := parseVec(*view)
	if err != nil {
		log.Fatal(err)
	}
	tier, err := parseQuality(*quality)
	if err != nil {
		log.Fatal(err)
	}
	var (
		cli session
		raw *remote.Client          // plain session, nil under -reconnect
		rc  *remote.ReconnectClient // resilient session, nil otherwise
	)
	if *reconnect {
		rc, err = remote.DialReconnect(*addr, remote.ReconnectOptions{Bandwidth: *bw})
		if err != nil {
			log.Fatal(err)
		}
		cli = rc
	} else {
		raw, err = remote.Dial(*addr)
		if err != nil {
			log.Fatal(err)
		}
		raw.SetBandwidth(*bw)
		cli = raw
	}
	defer cli.Close()

	switch {
	case *stats:
		r, err := cli.Stats()
		if err != nil {
			log.Fatal(err)
		}
		printStats(*addr, r)

	case *list:
		li, err := cli.List()
		if err != nil {
			log.Fatal(err)
		}
		mode := "static"
		if li.Live {
			mode = "live"
		}
		fmt.Printf("%s: %d frames (index %d..%d), %s\n", *addr, li.Frames-li.First, li.First, li.Frames-1, mode)

	case *fetch >= 0:
		rep, size2, took, err := cli.FetchFrame(*fetch)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("frame %d: %.2f MB in %v (%.2f MB/s)\n",
			*fetch, float64(size2)/1e6, took, float64(size2)/took.Seconds()/1e6)
		tf, err := core.DefaultTF(rep)
		if err != nil {
			log.Fatal(err)
		}
		fb, _, _, err := core.RenderFrame(rep, tf, *size, *size, dir)
		if err != nil {
			log.Fatal(err)
		}
		writePNG(fb.WritePNG, *out)

	case *rend >= 0:
		fb, wire, took, err := cli.Render(remote.RenderParams{
			Frame: *rend, Width: *size, Height: *size, ViewDir: dir, Quality: tier,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("frame %d: server-rendered, %.3f MB image in %v\n",
			*rend, float64(wire)/1e6, took)
		writePNG(fb.WritePNG, *out)

	case *follow && *reconnect:
		// Resilient follow: the resumed stream delivers every frame in
		// order across reconnects, each with its wire payload — render
		// locally as the frames arrive.
		sub, err := rc.SubscribeResume(-1)
		if err != nil {
			log.Fatal(err)
		}
		defer sub.Close()
		rendered := 0
		for f := range sub.Frames {
			rep, err := f.Decode()
			if err != nil {
				log.Fatal(err)
			}
			tf, err := core.DefaultTF(rep)
			if err != nil {
				log.Fatal(err)
			}
			fb, _, _, err := core.RenderFrame(rep, tf, *size, *size, dir)
			if err != nil {
				log.Fatal(err)
			}
			dst := strings.TrimSuffix(*out, ".png") + fmt.Sprintf("_%04d.png", f.Index)
			writePNG(fb.WritePNG, dst)
			fmt.Printf("frame %d: %.3f MB payload -> %s\n", f.Index, float64(len(f.Payload))/1e6, dst)
			rendered++
		}
		if err := sub.Err(); err != nil {
			log.Printf("feed failed: %v", err)
		}
		fmt.Printf("feed closed after %d frames (%d reconnects, %d skipped)\n",
			rendered, rc.Redials(), sub.Skipped())

	case *follow:
		sub, err := raw.Subscribe()
		if err != nil {
			log.Fatal(err)
		}
		defer sub.Close()
		rendered := 0
		baseIdx := -1      // last frame held, the next delta base
		var baseEnc []byte // its wire encoding
		for frames := range sub.Updates {
			if frames == 0 {
				continue
			}
			idx := frames - 1 // latest
			var fb *render.Framebuffer
			var wire int64
			var took time.Duration
			if *delta {
				// Delta mode: pull the frame (as a residual once a base
				// is held) and render locally.
				rep, enc, w, d, err := raw.FetchFrameDelta(idx, baseIdx, baseEnc)
				if err != nil {
					log.Printf("frame %d: %v", idx, err)
					continue
				}
				baseIdx, baseEnc = idx, enc
				tf, err := core.DefaultTF(rep)
				if err != nil {
					log.Fatal(err)
				}
				if fb, _, _, err = core.RenderFrame(rep, tf, *size, *size, dir); err != nil {
					log.Fatal(err)
				}
				wire, took = w, d
			} else {
				var err error
				if fb, wire, took, err = cli.Render(remote.RenderParams{
					Frame: idx, Width: *size, Height: *size, ViewDir: dir, Quality: tier,
				}); err != nil {
					log.Printf("frame %d: %v", idx, err)
					continue
				}
			}
			dst := strings.TrimSuffix(*out, ".png") + fmt.Sprintf("_%04d.png", idx)
			writePNG(fb.WritePNG, dst)
			fmt.Printf("frame %d: %.3f MB on the wire in %v -> %s\n", idx, float64(wire)/1e6, took, dst)
			rendered++
		}
		fmt.Printf("feed closed after %d frames\n", rendered)

	default:
		log.Fatal("one of -list, -stats, -fetch, -render or -follow required")
	}
}

// printStats pretty-prints a v5 stats report: the service counters,
// then one line per live session.
func printStats(addr string, r remote.StatsReport) {
	s := r.Stats
	fmt.Printf("%s:\n", addr)
	fmt.Printf("  frames   %d encoded, %d cache hits\n", s.FrameEncodes, s.FrameHits)
	fmt.Printf("  renders  %d run, %d cache hits, %d refused\n", s.Renders, s.RenderHits, s.RendersRefused)
	fmt.Printf("  deltas   %d encoded, %d cache hits\n", s.DeltaEncodes, s.DeltaHits)
	fmt.Printf("  notifies %d inline, %d count-only\n", s.NotifyFrames, s.NotifyCounts)
	fmt.Printf("  pings    %d\n", s.Pings)
	fmt.Printf("  overload %d sessions refused, %d pushes dropped, %d degraded, %d evicted\n",
		s.SessionsRefused, s.PushesDropped, s.PushesDegraded, s.SessionsEvicted)
	fmt.Printf("sessions (%d):\n", len(r.Sessions))
	for _, sess := range r.Sessions {
		state := "idle"
		switch {
		case sess.Refused:
			state = "refused"
		case sess.Subscribed && sess.Inline:
			state = "subscribed (inline)"
		case sess.Subscribed:
			state = "subscribed"
		}
		line := fmt.Sprintf("  #%d %s  %s", sess.ID, sess.Remote, state)
		if sess.Subscribed {
			line += fmt.Sprintf("  queue %d/%d  sent %d (last count %d)  dropped %d  degraded %d",
				sess.QueueDepth, sess.QueueCap, sess.Sent, sess.LastSent, sess.Dropped, sess.Degraded)
		}
		fmt.Println(line)
	}
	if len(r.Pipeline) == 0 {
		return
	}
	fmt.Printf("pipeline (%d stages, * = critical path):\n", len(r.Pipeline))
	for _, st := range r.Pipeline {
		mark := " "
		if st.Critical {
			mark = "*"
		}
		workers := fmt.Sprintf("%d", st.Workers)
		if st.Resizable {
			workers = fmt.Sprintf("%d [%d..%d]", st.Workers, st.MinWorkers, st.MaxWorkers)
		}
		line := fmt.Sprintf("  %s %-12s %-6s  workers %-10s util %3.0f%%  recv %3.0f%%  send %3.0f%%  inflight %d  done %d  svc %v  %.1f/s",
			mark, st.Name, st.Kind, workers,
			100*st.Utilization, 100*st.RecvWait, 100*st.SendWait,
			st.InFlight, st.Done, st.ServiceEWMA.Round(time.Microsecond), st.Throughput)
		if st.Placeable {
			side := "local"
			if st.Remote {
				side = "remote"
			}
			line += fmt.Sprintf("  placed %s (local %v, remote %v, fallbacks %d)",
				side, st.LocalEWMA.Round(time.Microsecond), st.RemoteEWMA.Round(time.Microsecond), st.Fallbacks)
		}
		if st.Finished {
			line += "  finished"
		}
		fmt.Println(line)
	}
}

func writePNG(write func(string) error, path string) {
	if err := write(path); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}

func parseQuality(s string) (remote.RenderQuality, error) {
	switch s {
	case "lossless":
		return remote.QualityLossless, nil
	case "preview":
		return remote.QualityPreview, nil
	}
	return 0, fmt.Errorf("quality %q must be lossless or preview", s)
}

func parseVec(s string) (vec.V3, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return vec.V3{}, fmt.Errorf("view %q must be dx,dy,dz", s)
	}
	var v [3]float64
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return vec.V3{}, err
		}
		v[i] = f
	}
	return vec.New(v[0], v[1], v[2]), nil
}
