// Command extract is the paper's "extraction program" (§2.3): it
// converts partitioned data into a hybrid representation at a chosen
// density threshold (or point budget). Because the partitioned
// particle file is sorted by increasing leaf density, the points kept
// are a contiguous prefix — extraction is effectively a sequential
// copy, so "different hybrid representations can be created and
// discarded as needed".
//
// Usage:
//
//	extract -in frame5_xpxy -budget 2000000 -volres 64 -out frame5.achy
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/hybrid"
	"repro/internal/pario"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("extract: ")
	var (
		in        = flag.String("in", "", "input base path (reads .oct and .pts)")
		threshold = flag.Float64("threshold", 0, "leaf-density threshold (0 = use -budget)")
		budget    = flag.Int64("budget", 0, "max halo points when -threshold is 0")
		volres    = flag.Int("volres", 64, "density volume resolution per axis")
		out       = flag.String("out", "", "output hybrid file (.achy)")
	)
	flag.Parse()
	if *in == "" || *out == "" {
		log.Fatal("-in and -out are required")
	}
	if *threshold <= 0 && *budget <= 0 {
		log.Fatal("one of -threshold or -budget is required")
	}

	tree, err := pario.ReadTreeFiles(*in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read tree: %d points, %d leaves\n", len(tree.Points), tree.NumLeaves())

	start := time.Now()
	rep, err := hybrid.Extract(tree, hybrid.ExtractConfig{
		VolumeRes: *volres,
		Threshold: *threshold,
		Budget:    *budget,
	})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	raw := pario.FrameBytes(int64(len(tree.Points)))
	fmt.Printf("extracted in %v: threshold %.4g, %d halo points, %dx%dx%d volume\n",
		elapsed, rep.Threshold, rep.NumPoints(), rep.Volume.Nx, rep.Volume.Ny, rep.Volume.Nz)
	fmt.Printf("hybrid size %d bytes vs raw %d bytes: %.1fx smaller\n",
		rep.SizeBytes(), raw, float64(raw)/float64(rep.SizeBytes()))

	if err := rep.WriteFile(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}
