// Command extract is the paper's "extraction program" (§2.3): it
// converts partitioned data into hybrid representations at a chosen
// density threshold (or point budget). Because the partitioned
// particle file is sorted by increasing leaf density, the points kept
// are a contiguous prefix — extraction is effectively a sequential
// copy, so "different hybrid representations can be created and
// discarded as needed".
//
// Multiple partitioned frames stream through the stage engine: tree
// reads, extractions and hybrid writes overlap across successive
// frames.
//
// Usage:
//
//	extract -in frame5_xpxy -budget 2000000 -volres 64 -out frame5.achy
//	extract -budget 2000000 -out run.achy run_xpxy_0000 run_xpxy_0001 ...
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/hybrid"
	"repro/internal/octree"
	"repro/internal/pario"
	"repro/internal/pipeline"
)

// frameJob carries one partitioned frame through the stage chain. The
// tree is dropped after extraction (only its point count is reported)
// so frames queued at the write stage don't pin full particle arrays.
type frameJob struct {
	index  int
	base   string
	tree   *octree.Tree
	points int64
	rep    *hybrid.Representation
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("extract: ")
	var (
		in        = flag.String("in", "", "input base path (reads .oct and .pts); more bases as positional args")
		threshold = flag.Float64("threshold", 0, "leaf-density threshold (0 = use -budget)")
		budget    = flag.Int64("budget", 0, "max halo points when -threshold is 0")
		volres    = flag.Int("volres", 64, "density volume resolution per axis")
		out       = flag.String("out", "", "output hybrid file (.achy)")
		workers   = flag.Int("workers", 2, "frames extracted concurrently")
	)
	flag.Parse()
	inputs := flag.Args()
	if *in != "" {
		inputs = append([]string{*in}, inputs...)
	}
	if len(inputs) == 0 || *out == "" {
		log.Fatal("-out and at least one input base (-in or positional) are required")
	}
	if *threshold <= 0 && *budget <= 0 {
		log.Fatal("one of -threshold or -budget is required")
	}
	cfg := hybrid.ExtractConfig{
		VolumeRes: *volres,
		Threshold: *threshold,
		Budget:    *budget,
	}
	outName := func(idx int) string {
		if len(inputs) == 1 {
			return *out
		}
		return strings.TrimSuffix(*out, ".achy") + fmt.Sprintf("_%04d.achy", idx)
	}

	start := time.Now()
	pl := pipeline.New(context.Background())
	// Stage 1: read partitioned frames (I/O, serial).
	trees := pipeline.Source(pl, 2, func(_ context.Context, emit func(frameJob) bool) error {
		for i, base := range inputs {
			t, err := pario.ReadTreeFiles(base)
			if err != nil {
				return err
			}
			if !emit(frameJob{index: i, base: base, tree: t}) {
				return nil
			}
		}
		return nil
	})
	// Stage 2: extract (compute, -workers frames at once).
	reps := pipeline.Map(pl, trees, pipeline.StageConfig{Name: "extract", Workers: *workers, Buf: 2},
		func(_ context.Context, j frameJob) (frameJob, error) {
			rep, err := hybrid.Extract(j.tree, cfg)
			if err != nil {
				return j, err
			}
			j.rep = rep
			j.points = int64(len(j.tree.Points))
			j.tree = nil
			return j, nil
		})
	// Stage 3: write hybrids in frame order (I/O, serial).
	pipeline.Sink(pl, reps, "write", func(_ context.Context, j frameJob) error {
		dst := outName(j.index)
		if err := j.rep.WriteFile(dst); err != nil {
			return err
		}
		raw := pario.FrameBytes(j.points)
		fmt.Printf("%s: threshold %.4g, %d halo points, %dx%dx%d volume, %.1fx smaller -> %s\n",
			j.base, j.rep.Threshold, j.rep.NumPoints(),
			j.rep.Volume.Nx, j.rep.Volume.Ny, j.rep.Volume.Nz,
			float64(raw)/float64(j.rep.SizeBytes()), dst)
		return nil
	})
	if err := pl.Wait(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("extracted %d frames in %v\n", len(inputs), time.Since(start))
}
