// Command partition is the paper's "partitioning program" (§2.3): it
// reads a raw particle frame, organizes the selected 3-D plot of the
// particles into an octree bounded by a maximal subdivision level, and
// writes the result to disk in two parts — the octree nodes and the
// density-sorted particle groups.
//
// Usage:
//
//	partition -in beam_0005.acpf -plot x,px,y -maxlevel 8 -out frame5_xpxy
//
// writes frame5_xpxy.oct and frame5_xpxy.pts.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/beam"
	"repro/internal/octree"
	"repro/internal/pario"
	"repro/internal/vec"
)

func parsePlot(s string) ([3]beam.Axis, error) {
	parts := strings.Split(s, ",")
	var axes [3]beam.Axis
	if len(parts) != 3 {
		return axes, fmt.Errorf("plot %q must name three axes like x,px,y", s)
	}
	for i, p := range parts {
		a, err := beam.ParseAxis(strings.TrimSpace(p))
		if err != nil {
			return axes, err
		}
		axes[i] = a
	}
	return axes, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("partition: ")
	var (
		in       = flag.String("in", "", "input particle frame (.acpf)")
		plot     = flag.String("plot", "x,y,z", "plot type: three of x,y,z,px,py,pz")
		maxLevel = flag.Int("maxlevel", 8, "maximal octree subdivision level")
		leafCap  = flag.Int("leafcap", 64, "points per leaf before subdividing")
		out      = flag.String("out", "", "output base path (writes .oct and .pts)")
	)
	flag.Parse()
	if *in == "" || *out == "" {
		log.Fatal("-in and -out are required")
	}
	axes, err := parsePlot(*plot)
	if err != nil {
		log.Fatal(err)
	}

	frame, err := pario.ReadFrameFile(*in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read %d particles (step %d)\n", frame.E.Len(), frame.Step)

	pts := make([]vec.V3, frame.E.Len())
	for i := range pts {
		pts[i] = frame.E.Point3(i, axes)
	}
	cfg := octree.DefaultConfig()
	cfg.MaxLevel = *maxLevel
	cfg.LeafCap = *leafCap

	start := time.Now()
	tree, err := octree.Build(pts, cfg)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("partitioned: %d nodes, %d leaves, depth %d, in %v (%.1f Mpts/s)\n",
		len(tree.Nodes), tree.NumLeaves(), tree.MaxDepth(), elapsed,
		float64(len(pts))/elapsed.Seconds()/1e6)

	if err := pario.WriteTreeFiles(*out, tree); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s.oct and %s.pts\n", *out, *out)
}
