// Command partition is the paper's "partitioning program" (§2.3): it
// reads raw particle frames, organizes the selected 3-D plot of the
// particles into an octree bounded by a maximal subdivision level, and
// writes each result to disk in two parts — the octree nodes and the
// density-sorted particle groups.
//
// Frames stream through the core stage engine: file reads, octree
// builds and tree writes overlap across successive frames, and
// -workers partitions that many frames concurrently.
//
// Usage:
//
//	partition -in beam_0005.acpf -plot x,px,y -maxlevel 8 -out frame5_xpxy
//
// writes frame5_xpxy.oct and frame5_xpxy.pts. With several inputs the
// output base gets _NNNN appended per frame:
//
//	partition -plot x,px,y -out run_xpxy beam_*.acpf
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/beam"
	"repro/internal/core"
	"repro/internal/octree"
	"repro/internal/pario"
)

func parsePlot(s string) ([3]beam.Axis, error) {
	parts := strings.Split(s, ",")
	var axes [3]beam.Axis
	if len(parts) != 3 {
		return axes, fmt.Errorf("plot %q must name three axes like x,px,y", s)
	}
	for i, p := range parts {
		a, err := beam.ParseAxis(strings.TrimSpace(p))
		if err != nil {
			return axes, err
		}
		axes[i] = a
	}
	return axes, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("partition: ")
	var (
		in       = flag.String("in", "", "input particle frame (.acpf); more frames as positional args")
		plot     = flag.String("plot", "x,y,z", "plot type: three of x,y,z,px,py,pz")
		maxLevel = flag.Int("maxlevel", 8, "maximal octree subdivision level")
		leafCap  = flag.Int("leafcap", 64, "points per leaf before subdividing")
		out      = flag.String("out", "", "output base path (writes .oct and .pts)")
		workers  = flag.Int("workers", 2, "frames partitioned concurrently")
	)
	flag.Parse()
	inputs := flag.Args()
	if *in != "" {
		inputs = append([]string{*in}, inputs...)
	}
	if len(inputs) == 0 || *out == "" {
		log.Fatal("-out and at least one input frame (-in or positional) are required")
	}
	axes, err := parsePlot(*plot)
	if err != nil {
		log.Fatal(err)
	}
	cfg := octree.DefaultConfig()
	cfg.MaxLevel = *maxLevel
	cfg.LeafCap = *leafCap

	pp := &core.ParticlePipeline{Tree: cfg, Axes: axes}
	start := time.Now()
	s := pp.StreamFrames(context.Background(), core.FrameFileSource(inputs...), core.StreamOptions{
		SkipExtract:      true,
		PartitionWorkers: *workers,
		Buffer:           2,
	})
	var total int64
	for r := range s.Out {
		base := *out
		if len(inputs) > 1 {
			base = fmt.Sprintf("%s_%04d", *out, r.Index)
		}
		if err := pario.WriteTreeFiles(base, r.Tree); err != nil {
			s.Cancel()
			s.Wait()
			log.Fatal(err)
		}
		total += int64(len(r.Tree.Points))
		fmt.Printf("%s: %d particles -> %d nodes, %d leaves, depth %d -> %s.{oct,pts}\n",
			inputs[r.Index], len(r.Tree.Points), len(r.Tree.Nodes),
			r.Tree.NumLeaves(), r.Tree.MaxDepth(), base)
	}
	if err := s.Wait(); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("partitioned %d frames (%d particles) in %v (%.1f Mpts/s)\n",
		len(inputs), total, elapsed, float64(total)/elapsed.Seconds()/1e6)
}
