// Command benchreport regenerates every figure and quantitative claim
// of the paper at a configurable scale and prints a table of
// paper-claim vs measured values — the harness behind EXPERIMENTS.md.
// PNG artifacts for the figures land in the -artifacts directory.
//
// Usage:
//
//	benchreport -scale small -artifacts out/
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"time"

	"repro/internal/beam"
	"repro/internal/core"
	"repro/internal/emsim"
	"repro/internal/hybrid"
	"repro/internal/lineio"
	"repro/internal/octree"
	"repro/internal/pario"
	"repro/internal/render"
	"repro/internal/sos"
	"repro/internal/stats"
	"repro/internal/vec"
	"repro/internal/volren"
)

type scaleParams struct {
	particles  int
	volumeFull int // "256^3" stand-in
	volumeHyb  int // "64^3" stand-in
	imageSize  int
	cavityRes  int
	lines      int
	periods    float64
	timeSteps  int // Fig 5 frames
}

var scales = map[string]scaleParams{
	"small":  {particles: 50_000, volumeFull: 64, volumeHyb: 16, imageSize: 128, cavityRes: 8, lines: 120, periods: 6, timeSteps: 8},
	"medium": {particles: 500_000, volumeFull: 128, volumeHyb: 32, imageSize: 256, cavityRes: 12, lines: 300, periods: 8, timeSteps: 8},
	"large":  {particles: 2_000_000, volumeFull: 256, volumeHyb: 64, imageSize: 512, cavityRes: 16, lines: 600, periods: 10, timeSteps: 8},
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchreport: ")
	var (
		scale     = flag.String("scale", "small", "small | medium | large")
		artifacts = flag.String("artifacts", "", "directory for PNG artifacts (empty = none)")
	)
	flag.Parse()
	p, ok := scales[*scale]
	if !ok {
		log.Fatalf("unknown scale %q", *scale)
	}
	if *artifacts != "" {
		if err := os.MkdirAll(*artifacts, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("== benchreport scale=%s ==\n\n", *scale)
	r := &reporter{params: p, dir: *artifacts}
	r.fig1()
	r.fig2()
	r.fig4()
	r.fig5()
	r.fig6()
	r.fig7and10()
	r.fig8()
	r.fig9()
	r.claims()
}

type reporter struct {
	params scaleParams
	dir    string

	// Cached pipeline state shared across figures.
	rep  *hybrid.Representation
	tree *octree.Tree
	sim  *beam.Sim
}

func (r *reporter) save(fb *render.Framebuffer, name string) {
	if r.dir == "" {
		return
	}
	if err := fb.WritePNG(filepath.Join(r.dir, name)); err != nil {
		log.Fatal(err)
	}
}

// beamFrame lazily runs the beam simulation once.
func (r *reporter) beamFrame() beam.Frame {
	if r.sim == nil {
		cfg := beam.DefaultConfig(r.params.particles)
		sim, err := beam.NewSim(cfg)
		if err != nil {
			log.Fatal(err)
		}
		sim.RunPeriods(20)
		r.sim = sim
	}
	return r.sim.Snapshot()
}

func (r *reporter) phaseTree() *octree.Tree {
	if r.tree == nil {
		f := r.beamFrame()
		pts := make([]vec.V3, f.E.Len())
		axes := [3]beam.Axis{beam.AxisX, beam.AxisPX, beam.AxisY}
		for i := range pts {
			pts[i] = f.E.Point3(i, axes)
		}
		tree, err := octree.Build(pts, octree.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		r.tree = tree
	}
	return r.tree
}

// fig1 compares full-resolution volume rendering against the hybrid
// (low-res volume + points) on the (x, px, y) phase plot.
func (r *reporter) fig1() {
	p := r.params
	tree := r.phaseTree()

	// Full-resolution reference volume.
	fullRep, err := hybrid.Extract(tree, hybrid.ExtractConfig{VolumeRes: p.volumeFull, Budget: 1})
	if err != nil {
		log.Fatal(err)
	}
	// Hybrid: low-res volume + point budget.
	hybRep, err := hybrid.Extract(tree, hybrid.ExtractConfig{VolumeRes: p.volumeHyb, Budget: int64(p.particles / 25)})
	if err != nil {
		log.Fatal(err)
	}
	tfFull, err := core.DefaultTF(fullRep)
	if err != nil {
		log.Fatal(err)
	}
	tfHyb, err := core.DefaultTF(hybRep)
	if err != nil {
		log.Fatal(err)
	}

	view := vec.New(0.2, 0.25, 1)
	renderOne := func(rep *hybrid.Representation, tf *hybrid.LinkedTF, usePoints bool) (*render.Framebuffer, time.Duration) {
		fb, err := render.NewFramebuffer(p.imageSize, p.imageSize)
		if err != nil {
			log.Fatal(err)
		}
		cam, err := render.LookAtBounds(rep.Bounds, view, math.Pi/3, 1)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		if usePoints {
			if _, _, err := volren.RenderHybrid(rep, tf, fb, cam, 1.2, false); err != nil {
				log.Fatal(err)
			}
		} else {
			vr, err := volren.New(rep.Volume, tf)
			if err != nil {
				log.Fatal(err)
			}
			vr.Render(fb, cam)
		}
		return fb, time.Since(start)
	}

	fbFull, tFull := renderOne(fullRep, tfFull, false)
	fbHyb, tHyb := renderOne(hybRep, tfHyb, true)
	r.save(fbFull, "fig1_volume.png")
	r.save(fbHyb, "fig1_hybrid.png")

	speedup := tFull.Seconds() / tHyb.Seconds()
	detailFull := stats.GradientEnergy(fbFull)
	detailHyb := stats.GradientEnergy(fbHyb)
	fmt.Printf("Fig 1  volume %d^3: %v | hybrid %d^3+%d pts: %v | speedup %.1fx (paper: \"much higher frame rates\")\n",
		p.volumeFull, tFull.Round(time.Millisecond), p.volumeHyb, hybRep.NumPoints(), tHyb.Round(time.Millisecond), speedup)
	fmt.Printf("       detail (gradient energy): volume %.4f, hybrid %.4f (paper: hybrid \"provides more detail\")\n\n",
		detailFull, detailHyb)
}

// fig2 renders the four phase-space distributions of Fig 2.
func (r *reporter) fig2() {
	f := r.beamFrame()
	plots := [][3]beam.Axis{
		{beam.AxisX, beam.AxisY, beam.AxisZ},
		{beam.AxisX, beam.AxisPX, beam.AxisY},
		{beam.AxisX, beam.AxisPX, beam.AxisZ},
		{beam.AxisPX, beam.AxisPY, beam.AxisPZ},
	}
	fmt.Printf("Fig 2  four distributions at step %d:\n", f.Step)
	for _, axes := range plots {
		pts := make([]vec.V3, f.E.Len())
		for i := range pts {
			pts[i] = f.E.Point3(i, axes)
		}
		tree, err := octree.Build(pts, octree.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		rep, err := hybrid.Extract(tree, hybrid.ExtractConfig{VolumeRes: r.params.volumeHyb, Budget: int64(r.params.particles / 25)})
		if err != nil {
			log.Fatal(err)
		}
		tf, err := core.DefaultTF(rep)
		if err != nil {
			log.Fatal(err)
		}
		fb, _, _, err := core.RenderFrame(rep, tf, r.params.imageSize, r.params.imageSize, vec.New(0.3, 0.25, 1))
		if err != nil {
			log.Fatal(err)
		}
		name := fmt.Sprintf("fig2_%s_%s_%s.png", axes[0], axes[1], axes[2])
		r.save(fb, name)
		fmt.Printf("       (%s,%s,%s): %d points, coverage %d px\n",
			axes[0], axes[1], axes[2], rep.NumPoints(), fb.CoveredPixels(0.01))
	}
	fmt.Println()
}

// fig4 renders the volume-only / combined / points-only decomposition.
func (r *reporter) fig4() {
	p := r.params
	f := r.beamFrame()
	pts := make([]vec.V3, f.E.Len())
	axes := [3]beam.Axis{beam.AxisX, beam.AxisY, beam.AxisZ}
	for i := range pts {
		pts[i] = f.E.Point3(i, axes)
	}
	tree, err := octree.Build(pts, octree.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	rep, err := hybrid.Extract(tree, hybrid.ExtractConfig{VolumeRes: p.volumeHyb, Budget: int64(p.particles / 20)})
	if err != nil {
		log.Fatal(err)
	}
	tf, err := core.DefaultTF(rep)
	if err != nil {
		log.Fatal(err)
	}
	cam, err := render.LookAtBounds(rep.Bounds, vec.New(0.2, 0.3, 1), math.Pi/3, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Volume only.
	fbV, _ := render.NewFramebuffer(p.imageSize, p.imageSize)
	vr, err := volren.New(rep.Volume, tf)
	if err != nil {
		log.Fatal(err)
	}
	vr.Render(fbV, cam)
	// Points only (opaque, Fig 4 note).
	fbP, _ := render.NewFramebuffer(p.imageSize, p.imageSize)
	rast := render.NewRasterizer(fbP, cam)
	splats := make([]render.PointSplat, len(rep.Points))
	for i := range rep.Points {
		d := tf.MapDensity(float64(rep.PointDensity[i]))
		c := tf.Color.Eval(d)
		c.A = 1
		splats[i] = render.PointSplat{Pos: rep.Points[i], Radius: 1.2, Color: c}
	}
	rast.DrawPointBatch(splats)
	// Combined.
	fbC, _ := render.NewFramebuffer(p.imageSize, p.imageSize)
	if _, _, err := volren.RenderHybrid(rep, tf, fbC, cam, 1.2, true); err != nil {
		log.Fatal(err)
	}
	r.save(fbV, "fig4_volume_only.png")
	r.save(fbC, "fig4_combined.png")
	r.save(fbP, "fig4_points_only.png")
	fmt.Printf("Fig 4  decomposition coverage (px): volume %d, points %d, combined %d (combined >= both parts)\n\n",
		fbV.CoveredPixels(0.01), fbP.CoveredPixels(0.01), fbC.CoveredPixels(0.01))
}

// fig5 runs the time-series evolution and checks four-fold symmetry.
func (r *reporter) fig5() {
	p := r.params
	cfg := beam.DefaultConfig(p.particles / 4)
	sim, err := beam.NewSim(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Fig 5  %d-frame beam evolution (four-fold symmetry score; 0 = perfect):\n", p.timeSteps)
	var totalHybrid int64
	for s := 0; s < p.timeSteps; s++ {
		sim.RunPeriods(4)
		f := sim.Snapshot()
		pts := make([]vec.V3, f.E.Len())
		for i := range pts {
			pts[i] = f.E.Point3(i, [3]beam.Axis{beam.AxisX, beam.AxisY, beam.AxisZ})
		}
		tree, err := octree.Build(pts, octree.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		rep, err := hybrid.Extract(tree, hybrid.ExtractConfig{VolumeRes: p.volumeHyb, Budget: int64(len(pts) / 20)})
		if err != nil {
			log.Fatal(err)
		}
		totalHybrid += rep.SizeBytes()
		sym := beam.FourFoldSymmetry(f.E)
		fmt.Printf("       frame %2d: step %5d  sym %.3f  hybrid %7d B (raw %d B)\n",
			s, f.Step, sym, rep.SizeBytes(), pario.FrameBytes(int64(f.E.Len())))
		if r.dir != "" {
			tf, err := core.DefaultTF(rep)
			if err != nil {
				log.Fatal(err)
			}
			// The paper's Fig 5 view: looking down z, the beam axis.
			fb, _, _, err := core.RenderFrame(rep, tf, p.imageSize, p.imageSize, vec.New(0, 0, 1))
			if err != nil {
				log.Fatal(err)
			}
			r.save(fb, fmt.Sprintf("fig5_frame%02d.png", s))
		}
	}
	raw := pario.FrameBytes(int64(p.particles / 4))
	fmt.Printf("       mean hybrid frame %.2f MB vs raw %.2f MB -> %.0fx more frames fit in memory\n\n",
		float64(totalHybrid)/float64(p.timeSteps)/1e6, float64(raw)/1e6,
		float64(raw)*float64(p.timeSteps)/float64(totalHybrid))
}

func (r *reporter) fig6() {
	p := r.params
	fp := core.NewFieldPipeline(p.cavityRes, p.lines)
	frame, err := fp.Solve(p.periods)
	if err != nil {
		log.Fatal(err)
	}
	res, err := fp.TraceE(frame)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Fig 6  technique comparison (%d lines):\n", len(res.Lines))
	var sosTris, tubeTris int64
	for i, tech := range sos.Techniques() {
		fb, st, err := fp.RenderLines(res.Lines, tech, p.imageSize, p.imageSize, vec.New(0.8, 0.45, 0.9))
		if err != nil {
			log.Fatal(err)
		}
		r.save(fb, fmt.Sprintf("fig6_%c_%s.png", 'a'+i, tech))
		fmt.Printf("       (%c) %-12s %8d tris %10d frags %8v\n",
			'a'+i, tech, st.Triangles, st.Fragments, st.Elapsed.Round(time.Millisecond))
		switch tech {
		case sos.TechSOS:
			sosTris = st.Triangles
		case sos.TechStreamtubes:
			tubeTris = st.Triangles
		}
	}
	fmt.Printf("       streamtube/SOS triangle factor: %.1fx (paper: \"five to six times less\")\n\n",
		float64(tubeTris)/float64(sosTris))
	_ = frame
}

func (r *reporter) fig7and10() {
	p := r.params
	fp := core.NewFieldPipeline(p.cavityRes, p.lines)
	frame, err := fp.Solve(p.periods)
	if err != nil {
		log.Fatal(err)
	}
	res, err := fp.TraceE(frame)
	if err != nil {
		log.Fatal(err)
	}
	mesh, err := fp.Mesh()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Fig 7  incremental loading (density correlation per prefix):\n")
	for _, frac := range []float64{0.125, 0.25, 0.5, 1.0} {
		n := int(frac * float64(len(res.Lines)))
		if n < 1 {
			n = 1
		}
		corr := res.DensityCorrelation(mesh, n)
		fb, _, err := fp.RenderLines(res.Prefix(n), sos.TechSOS, p.imageSize, p.imageSize, vec.New(0.8, 0.45, 0.9))
		if err != nil {
			log.Fatal(err)
		}
		r.save(fb, fmt.Sprintf("fig7_prefix%03d.png", n))
		fmt.Printf("       first %4d lines: correlation %.3f, coverage %d px\n", n, corr, fb.CoveredPixels(0.01))
	}
	// Fig 10: the same sweep, styled by strength (opacity & color).
	fb, _, err := fp.RenderLines(res.Lines, sos.TechRibbon, p.imageSize, p.imageSize, vec.New(0.8, 0.45, 0.9))
	if err != nil {
		log.Fatal(err)
	}
	r.save(fb, "fig10_styled.png")
	fmt.Printf("Fig 10 strength-styled rendering written (ribbon density + opacity by |E|)\n\n")
}

func (r *reporter) fig8() {
	p := r.params
	fp := core.NewFieldPipeline(p.cavityRes, p.lines/2)
	fmt.Printf("Fig 8  RF propagation (filling a multi-cell structure is slow — hence the paper's 326,700-step runs):\n")
	prevLast := 0.0
	for s := 0; s < 4; s++ {
		frame, err := fp.Solve(p.periods / 4)
		if err != nil {
			log.Fatal(err)
		}
		// Measure the RF reaching the far end: mean |E| in the last cell
		// vs the first (power flows in at cell 0 and out at the last).
		mesh, _ := fp.Mesh()
		cav := fp.Cavity
		firstZ := cav.PipeLength + cav.CellLength/2
		lastZ := cav.TotalLength() - cav.PipeLength - cav.CellLength/2
		var first, last float64
		var nFirst, nLast int
		for e := range mesh.Elements {
			z := mesh.Elements[e].Center.Z
			if math.Abs(z-firstZ) < cav.CellLength/2 {
				first += frame.ElementEMagnitude(e)
				nFirst++
			}
			if math.Abs(z-lastZ) < cav.CellLength/2 {
				last += frame.ElementEMagnitude(e)
				nLast++
			}
		}
		if nFirst > 0 {
			first /= float64(nFirst)
		}
		if nLast > 0 {
			last /= float64(nLast)
		}
		res, err := fp.TraceE(frame)
		if err != nil {
			log.Fatal(err)
		}
		fb, _, err := fp.RenderLines(res.Lines, sos.TechSOS, p.imageSize, p.imageSize, vec.New(0.8, 0.45, 0.9))
		if err != nil {
			log.Fatal(err)
		}
		r.save(fb, fmt.Sprintf("fig8_snap%d.png", s))
		growth := 0.0
		if prevLast > 0 {
			growth = last / prevLast
		}
		prevLast = last
		fmt.Printf("       t=%.2f: mean |E| first cell %.4g, last cell %.4g (last-cell growth %.1fx/snapshot)\n",
			frame.Time, first, last, growth)
	}
	fmt.Println()
}

func (r *reporter) fig9() {
	p := r.params
	run := func(asym float64) (float64, int) {
		fp := core.NewFieldPipeline(p.cavityRes, p.lines/2)
		fp.Cavity.Cells = 6 // scaled-down 12-cell study
		fp.Cavity.InputPort.Asymmetry = asym
		fp.Cavity.OutputPort.Cell = 5
		fp.Cavity.OutputPort.Asymmetry = asym
		frame, err := fp.Solve(p.periods)
		if err != nil {
			log.Fatal(err)
		}
		mesh, err := fp.Mesh()
		if err != nil {
			log.Fatal(err)
		}
		if r.dir != "" && asym > 0 {
			res, err := fp.TraceE(frame)
			if err != nil {
				log.Fatal(err)
			}
			fb, _, err := fp.RenderLines(res.Lines, sos.TechCutaway, p.imageSize, p.imageSize, vec.New(1, 0.2, 0.3))
			if err != nil {
				log.Fatal(err)
			}
			r.save(fb, "fig9_cutaway.png")
		}
		return frame.TransverseAsymmetry(), mesh.NumElements()
	}
	sym, elems := run(0)
	asym, _ := run(0.4)
	fmt.Printf("Fig 9  multi-cell structure (%d elements at this scale; paper: 1.6M):\n", elems)
	fmt.Printf("       field asymmetry: symmetric ports %.4f, asymmetric ports %.4f (paper: port asymmetry causes field asymmetry)\n",
		sym, asym)
	fmt.Printf("       paper-scale storage: 1.6M elements x 48 B = %.1f MB/step; 326,700 steps -> %.1f TB\n\n",
		1.6e6*48/1e6, 1.6e6*48*326700/1e12)
}

func (r *reporter) claims() {
	p := r.params
	fmt.Printf("Claims:\n")
	// C1: partition scaling.
	for _, n := range []int{p.particles / 4, p.particles / 2, p.particles} {
		f := r.beamFrame()
		_ = f
		pts := make([]vec.V3, n)
		e := r.beamFrame().E
		for i := 0; i < n; i++ {
			pts[i] = e.Point3(i%e.Len(), [3]beam.Axis{beam.AxisX, beam.AxisY, beam.AxisZ})
		}
		start := time.Now()
		if _, err := octree.Build(pts, octree.DefaultConfig()); err != nil {
			log.Fatal(err)
		}
		el := time.Since(start)
		fmt.Printf("  C1   partition %8d pts: %8v  (%.2f Mpts/s; paper: linear scaling, I/O bound)\n",
			n, el.Round(time.Millisecond), float64(n)/el.Seconds()/1e6)
	}
	// C2/C3: extraction + sizes.
	tree := r.phaseTree()
	for _, budget := range []int64{int64(p.particles / 100), int64(p.particles / 20), int64(p.particles / 5)} {
		start := time.Now()
		rep, err := hybrid.Extract(tree, hybrid.ExtractConfig{VolumeRes: p.volumeHyb, Budget: budget})
		if err != nil {
			log.Fatal(err)
		}
		el := time.Since(start)
		fmt.Printf("  C2   extract budget %8d: %8v, %8d pts, hybrid %8.2f MB (%.1fx smaller than raw)\n",
			budget, el.Round(time.Millisecond), rep.NumPoints(),
			float64(rep.SizeBytes())/1e6, rep.CompressionFactor(int64(p.particles)))
	}
	// C3 paper arithmetic.
	fmt.Printf("  C3   paper scale: raw 100M pts = %.1f GB/frame; hybrid <= 100 MB -> ~10 frames in memory vs 2\n",
		float64(pario.FrameBytes(100_000_000))/1e9)
	// C5 formula.
	fmt.Printf("  C5   SOS strip: %d tris per 50-pt line; 6-sided tube: %d (%.0fx)\n",
		sos.StripTriangles(50), sos.TubeTriangles(50, 6),
		float64(sos.TubeTriangles(50, 6))/float64(sos.StripTriangles(50)))
	// C6: line storage saving at this scale.
	fp := core.NewFieldPipeline(p.cavityRes, p.lines)
	frame, err := fp.Solve(p.periods)
	if err != nil {
		log.Fatal(err)
	}
	res, err := fp.TraceE(frame)
	if err != nil {
		log.Fatal(err)
	}
	lb := lineio.LinesBytes(res.Lines)
	fmt.Printf("  C6   line storage: %d lines = %.2f MB vs raw field %.2f MB -> %.1fx saving (paper: ~25x)\n",
		len(res.Lines), float64(lb)/1e6, float64(frame.RawBytes())/1e6,
		lineio.SavingFactor(frame.RawBytes(), lb))
	// C7/C8: Courant arithmetic.
	fmt.Printf("  C7   paper Courant: 40 ns at dt=1.224e-13 s = %.0f steps (paper: 326,700)\n",
		emsim.PaperScaleSteps(40e-9, 63.57e-6, 1.0))
	fmt.Printf("  C8   100 ns at the same spacing, safety 0.5 = %.2g steps (paper: \"millions\")\n",
		emsim.PaperScaleSteps(100e-9, 63.57e-6, 0.5))
}
