// Command hybridview is the offscreen version of the paper's desktop
// viewer (§2.4): it loads hybrid frames, applies the inverse-linked
// transfer functions, and renders PNG images — volume part ray-cast,
// halo points splatted, from any view direction. With multiple input
// frames it steps through them like the viewer's keyboard animation,
// timing each frame load as in §2.5.
//
// Frames stream through the stage engine: frame N+1 loads while frame
// N renders and frame N-1 encodes to PNG, with -workers rendering that
// many frames concurrently into a recycled framebuffer pool.
//
// Usage:
//
//	hybridview -out beam.png -size 512 -view 0.4,0.3,1 frame5.achy frame6.achy
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"strconv"
	"strings"
	"time"

	"repro/internal/beam"
	"repro/internal/core"
	"repro/internal/hybrid"
	"repro/internal/pario"
	"repro/internal/pipeline"
	"repro/internal/render"
	"repro/internal/vec"
	"repro/internal/volren"
)

func parseVec(s string) (vec.V3, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return vec.V3{}, fmt.Errorf("view %q must be dx,dy,dz", s)
	}
	var v [3]float64
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return vec.V3{}, err
		}
		v[i] = f
	}
	return vec.New(v[0], v[1], v[2]), nil
}

// viewJob carries one hybrid frame through load → render → encode.
type viewJob struct {
	index      int
	path       string
	rep        *hybrid.Representation
	loadTime   time.Duration
	renderTime time.Duration
	fb         *render.Framebuffer
	points     int64
	samples    int64
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("hybridview: ")
	var (
		out       = flag.String("out", "frame.png", "output PNG (multi-frame: _NNNN inserted)")
		size      = flag.Int("size", 512, "image size in pixels (square)")
		view      = flag.String("view", "0.4,0.3,1", "view direction dx,dy,dz")
		pointSize = flag.Float64("pointsize", 1.5, "point splat radius in pixels")
		opaque    = flag.Bool("opaque", false, "draw points fully opaque (Fig 4 style)")
		attr      = flag.String("attr", "", "dynamic point property: 'temperature' (needs -frame)")
		rawFrame  = flag.String("frame", "", "raw particle frame (.acpf) for -attr lookups")
		workers   = flag.Int("workers", 2, "frames rendered concurrently")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		log.Fatal("no input .achy frames given")
	}
	dir, err := parseVec(*view)
	if err != nil {
		log.Fatal(err)
	}
	// Dynamic point property (§2.5): computed per point at draw time
	// from the ORIGINAL particle data, not baked into the hybrid file.
	var attrFn volren.PointAttr
	if *attr != "" {
		if *rawFrame == "" {
			log.Fatal("-attr requires -frame (the raw particle data)")
		}
		raw, err := pario.ReadFrameFile(*rawFrame)
		if err != nil {
			log.Fatal(err)
		}
		switch *attr {
		case "temperature":
			attrFn = volren.PointAttr(beam.Temperature(raw.E))
		default:
			log.Fatalf("unknown attribute %q (supported: temperature)", *attr)
		}
	}

	paths := flag.Args()
	fbs := pipeline.NewFreeList(func() *render.Framebuffer {
		fb, err := render.NewFramebuffer(*size, *size)
		if err != nil {
			log.Fatal(err)
		}
		return fb
	})

	pl := pipeline.New(context.Background())
	// Stage 1: load hybrid frames (I/O, serial, timed per §2.5).
	loaded := pipeline.Source(pl, 2, func(_ context.Context, emit func(viewJob) bool) error {
		for i, path := range paths {
			start := time.Now()
			rep, err := hybrid.ReadFile(path)
			if err != nil {
				return err
			}
			if !emit(viewJob{index: i, path: path, rep: rep, loadTime: time.Since(start)}) {
				return nil
			}
		}
		return nil
	})
	// Stage 2: render into recycled framebuffers.
	rendered := pipeline.Map(pl, loaded, pipeline.StageConfig{Name: "render", Workers: *workers, Buf: 2},
		func(_ context.Context, j viewJob) (viewJob, error) {
			tf, err := core.DefaultTF(j.rep)
			if err != nil {
				return j, err
			}
			cam, err := render.LookAtBounds(j.rep.Bounds, dir, math.Pi/3, 1)
			if err != nil {
				return j, err
			}
			fb := fbs.Get()
			fb.Clear(hybrid.RGBA{})
			start := time.Now()
			var rast *render.Rasterizer
			var vr *volren.Renderer
			if attrFn != nil {
				rast, vr, err = volren.RenderHybridDynamic(j.rep, tf, fb, cam, *pointSize, attrFn, hybrid.HeatMap())
			} else {
				rast, vr, err = volren.RenderHybrid(j.rep, tf, fb, cam, *pointSize, *opaque)
			}
			if err != nil {
				fbs.Put(fb)
				return j, err
			}
			j.renderTime = time.Since(start)
			j.fb, j.points, j.samples = fb, rast.PointCount, vr.SampleCount
			return j, nil
		})
	// Stage 3: encode PNGs in frame order, recycling framebuffers.
	pipeline.Sink(pl, rendered, "encode", func(_ context.Context, j viewJob) error {
		dst := *out
		if len(paths) > 1 {
			dst = strings.TrimSuffix(*out, ".png") + fmt.Sprintf("_%04d.png", j.index)
		}
		err := j.fb.WritePNG(dst)
		fbs.Put(j.fb)
		if err != nil {
			return err
		}
		fmt.Printf("%s: load %v (%.1f MB/s), render %v (%d points, %d volume samples) -> %s\n",
			j.path, j.loadTime,
			float64(j.rep.SizeBytes())/j.loadTime.Seconds()/1e6,
			j.renderTime, j.points, j.samples, dst)
		return nil
	})
	if err := pl.Wait(); err != nil {
		log.Fatal(err)
	}
}
