// Command hybridview is the offscreen version of the paper's desktop
// viewer (§2.4): it loads hybrid frames, applies the inverse-linked
// transfer functions, and renders PNG images — volume part ray-cast,
// halo points splatted, from any view direction. With multiple input
// frames it steps through them like the viewer's keyboard animation,
// timing each frame load as in §2.5.
//
// Usage:
//
//	hybridview -out beam.png -size 512 -view 0.4,0.3,1 frame5.achy frame6.achy
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"strconv"
	"strings"
	"time"

	"repro/internal/beam"
	"repro/internal/core"
	"repro/internal/hybrid"
	"repro/internal/pario"
	"repro/internal/render"
	"repro/internal/vec"
	"repro/internal/volren"
)

func parseVec(s string) (vec.V3, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return vec.V3{}, fmt.Errorf("view %q must be dx,dy,dz", s)
	}
	var v [3]float64
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return vec.V3{}, err
		}
		v[i] = f
	}
	return vec.New(v[0], v[1], v[2]), nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("hybridview: ")
	var (
		out       = flag.String("out", "frame.png", "output PNG (multi-frame: _NNNN inserted)")
		size      = flag.Int("size", 512, "image size in pixels (square)")
		view      = flag.String("view", "0.4,0.3,1", "view direction dx,dy,dz")
		pointSize = flag.Float64("pointsize", 1.5, "point splat radius in pixels")
		opaque    = flag.Bool("opaque", false, "draw points fully opaque (Fig 4 style)")
		attr      = flag.String("attr", "", "dynamic point property: 'temperature' (needs -frame)")
		rawFrame  = flag.String("frame", "", "raw particle frame (.acpf) for -attr lookups")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		log.Fatal("no input .achy frames given")
	}
	dir, err := parseVec(*view)
	if err != nil {
		log.Fatal(err)
	}
	// Dynamic point property (§2.5): computed per point at draw time
	// from the ORIGINAL particle data, not baked into the hybrid file.
	var attrFn volren.PointAttr
	if *attr != "" {
		if *rawFrame == "" {
			log.Fatal("-attr requires -frame (the raw particle data)")
		}
		raw, err := pario.ReadFrameFile(*rawFrame)
		if err != nil {
			log.Fatal(err)
		}
		switch *attr {
		case "temperature":
			attrFn = volren.PointAttr(beam.Temperature(raw.E))
		default:
			log.Fatalf("unknown attribute %q (supported: temperature)", *attr)
		}
	}

	for fi, path := range flag.Args() {
		loadStart := time.Now()
		rep, err := hybrid.ReadFile(path)
		if err != nil {
			log.Fatal(err)
		}
		loadTime := time.Since(loadStart)

		tf, err := core.DefaultTF(rep)
		if err != nil {
			log.Fatal(err)
		}
		fb, err := render.NewFramebuffer(*size, *size)
		if err != nil {
			log.Fatal(err)
		}
		cam, err := render.LookAtBounds(rep.Bounds, dir, math.Pi/3, 1)
		if err != nil {
			log.Fatal(err)
		}
		renderStart := time.Now()
		var rast *render.Rasterizer
		var vr *volren.Renderer
		if attrFn != nil {
			rast, vr, err = volren.RenderHybridDynamic(rep, tf, fb, cam, *pointSize, attrFn, hybrid.HeatMap())
		} else {
			rast, vr, err = volren.RenderHybrid(rep, tf, fb, cam, *pointSize, *opaque)
		}
		if err != nil {
			log.Fatal(err)
		}
		renderTime := time.Since(renderStart)

		dst := *out
		if flag.NArg() > 1 {
			dst = strings.TrimSuffix(*out, ".png") + fmt.Sprintf("_%04d.png", fi)
		}
		if err := fb.WritePNG(dst); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: load %v (%.1f MB/s), render %v (%d points, %d volume samples) -> %s\n",
			path, loadTime,
			float64(rep.SizeBytes())/loadTime.Seconds()/1e6,
			renderTime, rast.PointCount, vr.SampleCount, dst)
	}
}
