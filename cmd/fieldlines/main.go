// Command fieldlines runs the density-proportional seeding strategy
// (§3.2) standalone over a solved cavity field and writes the
// pre-integrated lines in incremental-loading order. Prefixes of the
// output file are themselves valid incremental renderings (Fig 7).
//
// Usage:
//
//	fieldlines -res 10 -periods 6 -lines 400 -out lines.acfl
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/lineio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fieldlines: ")
	var (
		res     = flag.Int("res", 10, "lattice cells per cavity radius")
		periods = flag.Float64("periods", 6, "drive periods before tracing")
		lines   = flag.Int("lines", 400, "total field lines to integrate")
		out     = flag.String("out", "lines.acfl", "output line file")
	)
	flag.Parse()

	p := core.NewFieldPipeline(*res, *lines)
	frame, err := p.Solve(*periods)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("field solved: t=%.3f, maxE=%.4g\n", frame.Time, frame.MaxE())

	result, err := p.TraceE(frame)
	if err != nil {
		log.Fatal(err)
	}
	mesh, err := p.Mesh()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("traced %d lines; density correlation at full set %.3f, at half %.3f\n",
		len(result.Lines),
		result.DensityCorrelation(mesh, len(result.Lines)),
		result.DensityCorrelation(mesh, len(result.Lines)/2))

	if err := lineio.WriteFile(*out, result.Lines); err != nil {
		log.Fatal(err)
	}
	lb := lineio.LinesBytes(result.Lines)
	fmt.Printf("wrote %s (%d bytes; raw field %d bytes; saving %.1fx)\n",
		*out, lb, frame.RawBytes(), lineio.SavingFactor(frame.RawBytes(), lb))
}
