// Command fieldlines runs the density-proportional seeding strategy
// (§3.2) standalone over a solved cavity field and writes the
// pre-integrated lines in incremental-loading order. Prefixes of the
// output file are themselves valid incremental renderings (Fig 7).
//
// Usage:
//
//	fieldlines -res 10 -periods 6 -lines 400 -out lines.acfl
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fieldline"
	"repro/internal/lineio"
	"repro/internal/vec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fieldlines: ")
	var (
		res     = flag.Int("res", 10, "lattice cells per cavity radius")
		periods = flag.Float64("periods", 6, "drive periods before tracing")
		lines   = flag.Int("lines", 400, "total field lines to integrate")
		grid    = flag.Int("grid", 0, "trace an NxNxN uniform seed grid concurrently instead of density-proportional seeding")
		workers = flag.Int("workers", 0, "trace workers for -grid mode (0 = all cores)")
		out     = flag.String("out", "lines.acfl", "output line file")
	)
	flag.Parse()

	p := core.NewFieldPipeline(*res, *lines)
	frame, err := p.Solve(*periods)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("field solved: t=%.3f, maxE=%.4g\n", frame.Time, frame.MaxE())
	mesh, err := p.Mesh()
	if err != nil {
		log.Fatal(err)
	}

	var traced []*fieldline.Line
	if *grid > 0 {
		// Uniform-grid preview mode: seeds are independent, so the
		// whole batch integrates concurrently on fieldline.TraceAll's
		// chunked workers instead of one line at a time.
		var seeds []vec.V3
		b := mesh.Bounds
		n := *grid
		for k := 0; k < n; k++ {
			for j := 0; j < n; j++ {
				for i := 0; i < n; i++ {
					pt := vec.New(
						b.Min.X+(float64(i)+0.5)/float64(n)*(b.Max.X-b.Min.X),
						b.Min.Y+(float64(j)+0.5)/float64(n)*(b.Max.Y-b.Min.Y),
						b.Min.Z+(float64(k)+0.5)/float64(n)*(b.Max.Z-b.Min.Z),
					)
					if mesh.Inside(pt) {
						seeds = append(seeds, pt)
					}
				}
			}
		}
		cfg := fieldline.Config{
			Step:     mesh.MinSpacing() / 2,
			MaxSteps: 600,
			MinMag:   frame.MaxE() * 1e-4,
			Domain:   mesh.Inside,
		}
		traced, err = fieldline.TraceBothAll(fieldline.FieldFunc(frame.SampleE), seeds, cfg, *workers)
		if err != nil {
			log.Fatal(err)
		}
		kept := traced[:0]
		for _, l := range traced {
			if l.NumPoints() >= 2 {
				kept = append(kept, l)
			}
		}
		traced = kept
		fmt.Printf("traced %d grid lines from %d seeds\n", len(traced), len(seeds))
	} else {
		result, err := p.TraceE(frame)
		if err != nil {
			log.Fatal(err)
		}
		traced = result.Lines
		fmt.Printf("traced %d lines; density correlation at full set %.3f, at half %.3f\n",
			len(result.Lines),
			result.DensityCorrelation(mesh, len(result.Lines)),
			result.DensityCorrelation(mesh, len(result.Lines)/2))
	}

	if err := lineio.WriteFile(*out, traced); err != nil {
		log.Fatal(err)
	}
	lb := lineio.LinesBytes(traced)
	fmt.Printf("wrote %s (%d bytes; raw field %d bytes; saving %.1fx)\n",
		*out, lb, frame.RawBytes(), lineio.SavingFactor(frame.RawBytes(), lb))
}
