// Command linerender draws a pre-integrated field-line file with any
// of the nine Fig 6 techniques (or all of them) and writes PNGs, with
// the per-technique triangle/fragment statistics the paper's
// comparison is about.
//
// Usage:
//
//	linerender -in lines.acfl -tech all -size 512 -out fig6
//	linerender -in lines.acfl -tech sos -prefix 50 -out fig7_050.png
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"strings"

	"repro/internal/hybrid"
	"repro/internal/lineio"
	"repro/internal/render"
	"repro/internal/sos"
	"repro/internal/vec"
)

func techByName(name string) (sos.Technique, bool) {
	for _, t := range sos.Techniques() {
		if t.String() == name {
			return t, true
		}
	}
	return 0, false
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("linerender: ")
	var (
		in     = flag.String("in", "", "input field-line file (.acfl)")
		tech   = flag.String("tech", "sos", "technique name or 'all'")
		size   = flag.Int("size", 512, "image size in pixels")
		prefix = flag.Int("prefix", 0, "render only the first N lines (0 = all)")
		out    = flag.String("out", "lines", "output PNG path or prefix")
	)
	flag.Parse()
	if *in == "" {
		log.Fatal("-in is required")
	}
	lines, err := lineio.ReadFile(*in)
	if err != nil {
		log.Fatal(err)
	}
	if *prefix > 0 && *prefix < len(lines) {
		lines = lines[:*prefix]
	}
	fmt.Printf("loaded %d lines\n", len(lines))

	// Frame the data.
	bounds := vec.Empty()
	maxStrength := 0.0
	for _, l := range lines {
		for i, p := range l.Points {
			bounds = bounds.ExtendPoint(p)
			if l.Strengths[i] > maxStrength {
				maxStrength = l.Strengths[i]
			}
		}
	}
	if bounds.IsEmpty() {
		log.Fatal("no line geometry to render")
	}
	cam, err := render.LookAtBounds(bounds, vec.New(0.8, 0.45, 0.9), math.Pi/3, 1)
	if err != nil {
		log.Fatal(err)
	}

	renderOne := func(t sos.Technique, dst string) {
		fb, err := render.NewFramebuffer(*size, *size)
		if err != nil {
			log.Fatal(err)
		}
		fb.Clear(hybrid.RGBA{R: 0.02, G: 0.02, B: 0.04, A: 1})
		opts := sos.DefaultOptions(bounds.Diagonal())
		opts.MaxStrength = maxStrength
		opts.CutNormal = vec.New(1, 0, 0)
		opts.CutOffset = bounds.Center().X
		opts.FocusCenter = bounds.Center()
		opts.FocusRadius = bounds.Diagonal() / 6
		st := sos.RenderLines(fb, cam, lines, t, opts)
		if err := fb.WritePNG(dst); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %8d triangles %10d fragments %8v -> %s\n",
			t, st.Triangles, st.Fragments, st.Elapsed.Round(1000), dst)
	}

	if *tech == "all" {
		base := strings.TrimSuffix(*out, ".png")
		for i, t := range sos.Techniques() {
			renderOne(t, fmt.Sprintf("%s_%c_%s.png", base, 'a'+i, t))
		}
		return
	}
	t, ok := techByName(*tech)
	if !ok {
		log.Fatalf("unknown technique %q (try 'all' or one of %v)", *tech, sos.Techniques())
	}
	dst := *out
	if !strings.HasSuffix(dst, ".png") {
		dst += ".png"
	}
	renderOne(t, dst)
}
