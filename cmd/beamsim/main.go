// Command beamsim runs the particle-core beam-dynamics simulation and
// writes raw particle frames to disk — the stand-in for the IMPACT
// runs that produced the paper's §2 data.
//
// Usage:
//
//	beamsim -n 200000 -periods 30 -frames 10 -mismatch 1.5 -out data/beam
//
// writes data/beam_0000.acpf .. data/beam_0009.acpf plus the initial
// state frame.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/beam"
	"repro/internal/pario"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("beamsim: ")
	var (
		n        = flag.Int("n", 100000, "number of particles")
		periods  = flag.Int("periods", 20, "lattice periods to simulate")
		frames   = flag.Int("frames", 10, "output frames (evenly spaced)")
		mismatch = flag.Float64("mismatch", 1.5, "envelope mismatch factor (1 = matched)")
		seed     = flag.Int64("seed", 20020101, "initial distribution RNG seed")
		out      = flag.String("out", "beam", "output path prefix")
	)
	flag.Parse()

	cfg := beam.DefaultConfig(*n)
	cfg.Mismatch = *mismatch
	cfg.Seed = *seed
	sim, err := beam.NewSim(cfg)
	if err != nil {
		log.Fatal(err)
	}
	m := sim.Matched()
	fmt.Printf("matched envelope: a=%.4f b=%.4f; mismatch %.2f; %d particles\n",
		m.A, m.B, *mismatch, *n)

	if dir := filepath.Dir(*out); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	totalSteps := *periods * cfg.StepsPerPeriod
	interval := totalSteps / *frames
	if interval < 1 {
		interval = 1
	}
	written := 0
	save := func(f beam.Frame) {
		path := fmt.Sprintf("%s_%04d.acpf", *out, written)
		if err := pario.WriteFrameFile(path, f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("frame %2d: step %5d  s=%.2f  maxR=%.2f  halo=%.4f  -> %s (%d bytes)\n",
			written, f.Step, f.S, sim.MaxRadius(),
			beam.HaloFraction(f.E, 2.5, 0), path, pario.FrameBytes(int64(f.E.Len())))
		written++
	}
	save(sim.Snapshot())
	for s := 1; s <= totalSteps; s++ {
		sim.Step()
		if s%interval == 0 && written <= *frames {
			save(sim.Snapshot())
		}
	}
	fmt.Printf("done: %d frames, %d steps, s=%.2f\n", written, sim.Steps(), sim.S)
}
