// Command emsim runs the FDTD time-domain field solver over an n-cell
// accelerator structure — the Tau3P stand-in — and reports Courant
// arithmetic, energy history, and optionally writes field-line files
// per snapshot for the linerender tool.
//
// Usage:
//
//	emsim -cells 3 -res 10 -periods 8 -snapshots 4 -lines 200 -out cavity
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/emsim"
	"repro/internal/fieldline"
	"repro/internal/hexmesh"
	"repro/internal/lineio"
	"repro/internal/seeding"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("emsim: ")
	var (
		cells     = flag.Int("cells", 3, "number of cavity cells (3 = Figs 6-8, 12 = Fig 9)")
		res       = flag.Int("res", 10, "lattice cells per cavity radius")
		periods   = flag.Float64("periods", 8, "drive periods to simulate")
		snapshots = flag.Int("snapshots", 4, "field snapshots to take")
		lines     = flag.Int("lines", 200, "field lines to trace per snapshot (0 = none)")
		asym      = flag.Float64("asym", 0, "port asymmetry (Fig 9 study)")
		out       = flag.String("out", "cavity", "output path prefix")
	)
	flag.Parse()

	cav := hexmesh.DefaultCavity(*res)
	if *cells != 3 {
		cav = hexmesh.TwelveCellCavity(*res, *asym)
		cav.Cells = *cells
		cav.OutputPort.Cell = *cells - 1
	} else if *asym > 0 {
		cav.InputPort.Asymmetry = *asym
		cav.OutputPort.Asymmetry = *asym
	}
	mesh, err := hexmesh.BuildCavity(cav)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := emsim.New(emsim.DefaultConfig(mesh, cav))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d-cell structure: %d elements, spacing %.4f, dt %.3g (Courant limit %.3g)\n",
		*cells, mesh.NumElements(), mesh.MinSpacing(), sim.DT(), sim.CourantDT())
	fmt.Printf("raw field storage: %.2f MB per time step\n",
		float64(mesh.NumElements()*48)/1e6)

	perSnap := *periods / float64(*snapshots)
	for s := 0; s < *snapshots; s++ {
		sim.AdvancePeriods(perSnap)
		frame := sim.Snapshot()
		fmt.Printf("snapshot %d: step %d, t=%.3f, energy %.4g, maxE %.4g, asym %.4f\n",
			s, frame.Step, frame.Time, sim.Energy(), frame.MaxE(), frame.TransverseAsymmetry())
		if *lines > 0 {
			cfg := seeding.Config{
				TotalLines:    *lines,
				Trace:         fieldline.Config{Step: mesh.MinSpacing() / 2, MaxSteps: 800, MinMag: frame.MaxE() * 1e-4},
				Seed:          uint64(2002 + s),
				Bidirectional: true,
			}
			field := fieldline.FieldFunc(frame.SampleE)
			intensity := func(e int) float64 { return frame.ElementEMagnitude(e) }
			res, err := seeding.SeedLines(mesh, field, intensity, cfg)
			if err != nil {
				log.Fatal(err)
			}
			path := fmt.Sprintf("%s_snap%02d.acfl", *out, s)
			if err := lineio.WriteFile(path, res.Lines); err != nil {
				log.Fatal(err)
			}
			lb := lineio.LinesBytes(res.Lines)
			fmt.Printf("  traced %d lines -> %s (%d bytes, saving %.1fx vs raw field)\n",
				len(res.Lines), path, lb, lineio.SavingFactor(frame.RawBytes(), lb))
		}
	}
}
