// Command vizserve runs the visualization service — the server half of
// the paper's remote setting, where hybrid frames live "where the
// supercomputer lives" and scientists connect from thousands of miles
// away. It serves one of the three store modes:
//
//	-dir DIR    serve the .achy frames of a directory (batch workflow)
//	-live       run a beam simulation and publish each extracted frame
//	            into a bounded latest-wins ring while serving it
//	            (in-situ mode: clients subscribed with vizclient -follow
//	            watch the run as it computes)
//	(default)   precompute -frames hybrid frames in memory, then serve
//
// Usage:
//
//	vizserve -addr 127.0.0.1:9920 -live -frames 50 -particles 100000
//	vizserve -dir ./frames
//	vizserve -live -max-sessions 64 -max-renders 4 -slow evict
//
// The overload flags (protocol v5) bound what a viewer crowd can do
// to the service: -max-sessions and -max-renders refuse excess work
// with a retryable error (reconnecting clients back off and retry),
// -queue bounds each subscriber's send queue, and -slow picks what
// happens to a subscriber that can't keep up (skip | degrade |
// evict). The service speaks protocol v7: the pipeline feeding it can
// itself fan sub-volume renders across vizworker fleets
// (core.StreamOptions.RenderAddrs, kernel render.partial.v1) and
// depth-composite the partials before frames ever reach this server —
// the sort-last half of the paper's parallel rendering architecture.
// With -balance (live mode) the pipeline self-balances: per-stage
// telemetry drives worker moves toward the measured bottleneck, and
// the Stats verb carries the live stage table to vizclient -stats.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"repro/internal/core"
	"repro/internal/hybrid"
	"repro/internal/pipeline"
	"repro/internal/remote"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vizserve: ")
	var (
		addr      = flag.String("addr", "127.0.0.1:9920", "listen address")
		dir       = flag.String("dir", "", "serve .achy frames from this directory")
		live      = flag.Bool("live", false, "simulate and publish frames while serving (in-situ)")
		frames    = flag.Int("frames", 10, "frames to simulate")
		particles = flag.Int("particles", 50_000, "particles in the simulation")
		periods   = flag.Int("periods", 4, "lattice periods between frames")
		volres    = flag.Int("volres", 32, "hybrid volume resolution per axis")
		ring      = flag.Int("ring", 8, "live mode: frames retained in the latest-wins ring")
		maxSess   = flag.Int("max-sessions", 0, "max concurrent client sessions (0 = unlimited)")
		maxRend   = flag.Int("max-renders", 0, "max concurrent server-side renders (0 = unlimited)")
		queue     = flag.Int("queue", 0, "per-subscriber send queue bound (0 = default)")
		slow      = flag.String("slow", "skip", "slow-subscriber policy: skip, degrade or evict")
		balance   = flag.Bool("balance", false, "live mode: self-balance the pipeline (per-stage telemetry feeds adaptive worker rebalancing; vizclient -stats shows the stage table)")
	)
	flag.Parse()

	policy, err := parseSlow(*slow)
	if err != nil {
		log.Fatal(err)
	}
	opts := remote.ServiceOptions{
		MaxSessions: *maxSess,
		MaxRenders:  *maxRend,
		SendQueue:   *queue,
		Slow:        policy,
	}

	switch {
	case *dir != "":
		store, err := remote.NewDirStore(*dir)
		if err != nil {
			log.Fatal(err)
		}
		serve(*addr, store, opts, fmt.Sprintf("%d on-disk frames from %s", store.NumFrames(), *dir))

	case *live:
		lr, err := remote.NewLiveRing(*ring)
		if err != nil {
			log.Fatal(err)
		}
		srv, err := remote.NewServiceWith(*addr, lr, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("vizserve: in-situ service on %s (ring of %d frames)\n", srv.Addr(), *ring)

		pp := core.NewParticlePipeline(*particles)
		pp.Extract.VolumeRes = *volres
		sim, err := pp.NewSim()
		if err != nil {
			log.Fatal(err)
		}
		sopts := core.StreamOptions{Sink: lr}
		if *balance {
			sopts.Balance = &core.BalanceOptions{
				BalancerOptions: pipeline.BalancerOptions{
					OnDecision: func(d pipeline.Decision) {
						fmt.Printf("vizserve: rebalance: %s\n", d)
					},
				},
			}
		}
		stream := pp.StreamFrames(context.Background(),
			core.SimSource(sim, *frames, *periods), sopts)
		// Expose the live stage table through the Stats verb so
		// vizclient -stats can watch the balancer work.
		srv.SetPipelineStats(stream.Snapshot)
		for r := range stream.Out {
			fmt.Printf("vizserve: published frame %d (%d halo points, %.2f MB)\n",
				r.Index, r.Rep.NumPoints(), float64(r.Rep.SizeBytes())/1e6)
		}
		if err := stream.Wait(); err != nil {
			log.Fatal(err)
		}
		fmt.Println("vizserve: simulation finished; still serving — Ctrl-C to stop")
		waitInterrupt()
		srv.Close()

	default:
		pp := core.NewParticlePipeline(*particles)
		pp.Extract.VolumeRes = *volres
		sim, err := pp.NewSim()
		if err != nil {
			log.Fatal(err)
		}
		var reps []*hybrid.Representation
		stream := pp.StreamFrames(context.Background(),
			core.SimSource(sim, *frames, *periods), core.StreamOptions{})
		for r := range stream.Out {
			reps = append(reps, r.Rep)
		}
		if err := stream.Wait(); err != nil {
			log.Fatal(err)
		}
		store, err := remote.NewMemStore(reps)
		if err != nil {
			log.Fatal(err)
		}
		serve(*addr, store, opts, fmt.Sprintf("%d precomputed frames", len(reps)))
	}
}

func serve(addr string, store remote.FrameStore, opts remote.ServiceOptions, what string) {
	srv, err := remote.NewServiceWith(addr, store, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vizserve: serving %s on %s — Ctrl-C to stop\n", what, srv.Addr())
	waitInterrupt()
	srv.Close()
}

func parseSlow(s string) (remote.SlowPolicy, error) {
	switch s {
	case "skip":
		return remote.SlowSkip, nil
	case "degrade":
		return remote.SlowDegrade, nil
	case "evict":
		return remote.SlowEvict, nil
	}
	return 0, fmt.Errorf("slow policy %q must be skip, degrade or evict", s)
}

func waitInterrupt() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
}
