package repro

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/beam"
	"repro/internal/core"
	"repro/internal/hybrid"
	"repro/internal/pario"
)

// TestCmdChainSmoke exercises the file chain the commands implement —
// beamsim writes .acpf frames, partition streams them into .oct/.pts
// pairs, extract streams those into .achy hybrids — entirely through
// pario, asserting the CRC-validated round-trip at every hop: every
// file read back must decode to exactly the data written, and a
// corrupted file must be rejected by its checksum.
func TestCmdChainSmoke(t *testing.T) {
	dir := t.TempDir()
	const n = 3000

	// beamsim: simulate and write raw frames.
	sim, err := beam.NewSim(beam.DefaultConfig(n))
	if err != nil {
		t.Fatal(err)
	}
	var framePaths []string
	for i := 0; i < 3; i++ {
		sim.RunPeriods(2)
		f := sim.Snapshot()
		path := filepath.Join(dir, fmt.Sprintf("beam_%04d.acpf", i))
		if err := pario.WriteFrameFile(path, f); err != nil {
			t.Fatal(err)
		}
		// Round trip: the frame must come back bit-exact.
		got, err := pario.ReadFrameFile(path)
		if err != nil {
			t.Fatalf("frame %d failed CRC-validated read: %v", i, err)
		}
		if got.Step != f.Step || got.S != f.S || got.E.Len() != f.E.Len() {
			t.Fatalf("frame %d header mismatch after round trip", i)
		}
		for j := 0; j < f.E.Len(); j += 97 {
			if got.E.X[j] != f.E.X[j] || got.E.Pz[j] != f.E.Pz[j] {
				t.Fatalf("frame %d particle %d mismatch after round trip", i, j)
			}
		}
		framePaths = append(framePaths, path)
	}

	// partition: stream the frame files into two-part tree files, as
	// cmd/partition does.
	pp := core.NewParticlePipeline(n)
	pp.Extract.VolumeRes = 16
	s := pp.StreamFrames(context.Background(), core.FrameFileSource(framePaths...), core.StreamOptions{
		SkipExtract:      true,
		PartitionWorkers: 2,
	})
	var treeBases []string
	for r := range s.Out {
		base := filepath.Join(dir, fmt.Sprintf("part_%04d", r.Index))
		if err := pario.WriteTreeFiles(base, r.Tree); err != nil {
			t.Fatal(err)
		}
		back, err := pario.ReadTreeFiles(base)
		if err != nil {
			t.Fatalf("tree %d failed CRC-validated read: %v", r.Index, err)
		}
		if len(back.Points) != len(r.Tree.Points) || back.NumLeaves() != r.Tree.NumLeaves() {
			t.Fatalf("tree %d shape mismatch after round trip", r.Index)
		}
		for j := range back.Points {
			if back.Points[j] != r.Tree.Points[j] || back.OrigIndex[j] != r.Tree.OrigIndex[j] {
				t.Fatalf("tree %d point %d mismatch after round trip", r.Index, j)
			}
		}
		treeBases = append(treeBases, base)
	}
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(treeBases) != len(framePaths) {
		t.Fatalf("partitioned %d frames, want %d", len(treeBases), len(framePaths))
	}

	// extract: trees -> hybrid representations -> .achy files.
	for i, base := range treeBases {
		tree, err := pario.ReadTreeFiles(base)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := hybrid.Extract(tree, hybrid.ExtractConfig{VolumeRes: 16, Budget: n / 10})
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, fmt.Sprintf("frame_%04d.achy", i))
		if err := rep.WriteFile(path); err != nil {
			t.Fatal(err)
		}
		back, err := hybrid.ReadFile(path)
		if err != nil {
			t.Fatalf("hybrid %d failed CRC-validated read: %v", i, err)
		}
		var a, b bytes.Buffer
		if err := rep.Write(&a); err != nil {
			t.Fatal(err)
		}
		if err := back.Write(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("hybrid %d not bit-identical after round trip", i)
		}
	}

	// Corruption at any link of the chain must be caught by the CRC.
	for _, victim := range []string{
		framePaths[0],
		treeBases[0] + ".pts",
		filepath.Join(dir, "frame_0000.achy"),
	} {
		data, err := os.ReadFile(victim)
		if err != nil {
			t.Fatal(err)
		}
		flipped := append([]byte(nil), data...)
		flipped[len(flipped)/2] ^= 0x40
		if err := os.WriteFile(victim, flipped, 0o644); err != nil {
			t.Fatal(err)
		}
		switch {
		case strings.HasSuffix(victim, ".acpf"):
			_, err = pario.ReadFrameFile(victim)
		case strings.HasSuffix(victim, ".pts"):
			_, err = pario.ReadTreeFiles(strings.TrimSuffix(victim, ".pts"))
		default:
			_, err = hybrid.ReadFile(victim)
		}
		if err == nil {
			t.Errorf("corrupted %s read back without error", filepath.Base(victim))
		}
	}
}
