package repro

import (
	"bytes"
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/hybrid"
	"repro/internal/remote"
	"repro/internal/render"
	"repro/internal/vec"
)

// These tests exercise the remote service against live core pipelines.
// They live at the root (not in internal/remote) because core sits
// above remote in the layering — core places distributed stages on
// remote workers — so remote's own tests cannot import core.

func dialRemote(t testing.TB, addr string) *remote.Client {
	t.Helper()
	cli, err := remote.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return cli
}

// fbEqual asserts two framebuffers match bit for bit.
func fbEqual(t *testing.T, got, want *render.Framebuffer, what string) {
	t.Helper()
	if got.W != want.W || got.H != want.H {
		t.Fatalf("%s: size %dx%d, want %dx%d", what, got.W, got.H, want.W, want.H)
	}
	for i := range want.Color {
		if math.Float32bits(got.Color[i]) != math.Float32bits(want.Color[i]) {
			t.Fatalf("%s: color word %d differs", what, i)
		}
	}
	for i := range want.Depth {
		if math.Float32bits(got.Depth[i]) != math.Float32bits(want.Depth[i]) {
			t.Fatalf("%s: depth word %d differs", what, i)
		}
	}
}

// gatedSink wraps a FrameSink so the test can interleave
// deterministically with the running pipeline: after each publish the
// sink blocks until the test acknowledges, proving the client consumed
// the frame while the simulation was still mid-run.
type gatedSink struct {
	inner     core.FrameSink
	published chan int
	ack       chan struct{}
}

func (g *gatedSink) Publish(index int, rep *hybrid.Representation) error {
	if err := g.inner.Publish(index, rep); err != nil {
		return err
	}
	g.published <- index
	<-g.ack
	return nil
}

// TestInSituLiveRoundTrip is the acceptance test of the service API: a
// live core.StreamFrames run publishes into a Service through a
// LiveRing FrameSink while a subscribed client receives and fetches
// frames mid-run, and a Render request against the live store returns
// a framebuffer bit-identical to core.RenderFrame computed locally on
// the fetched frame.
func TestInSituLiveRoundTrip(t *testing.T) {
	const nFrames = 3
	ring, err := remote.NewLiveRing(nFrames + 1)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := remote.NewService("127.0.0.1:0", ring)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli := dialRemote(t, srv.Addr())

	li, err := cli.List()
	if err != nil {
		t.Fatal(err)
	}
	if !li.Live || li.Frames != 0 {
		t.Fatalf("live ring lists as %+v, want live and empty", li)
	}
	sub, err := cli.Subscribe()
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if n := <-sub.Updates; n != 0 {
		t.Fatalf("initial update %d, want 0", n)
	}

	// Server side: a live pipeline publishing into the ring.
	pp := core.NewParticlePipeline(6000)
	pp.Extract.VolumeRes = 12
	sim, err := pp.NewSim()
	if err != nil {
		t.Fatal(err)
	}
	sink := &gatedSink{inner: ring, published: make(chan int), ack: make(chan struct{})}
	stream := pp.StreamFrames(context.Background(),
		core.SimSource(sim, nFrames, 2),
		core.StreamOptions{Sink: sink})

	viewDir := vec.New(0.4, 0.3, 1)
	for want := 0; want < nFrames; want++ {
		select {
		case idx := <-sink.published:
			if idx != want {
				t.Fatalf("published frame %d, want %d", idx, want)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("pipeline never published")
		}

		// The pipeline is now blocked mid-run, holding frame `want`
		// published: the subscriber must observe the new frame count...
		select {
		case n := <-sub.Updates:
			if n != want+1 {
				t.Fatalf("update says %d frames, want %d", n, want+1)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("no subscription update for published frame")
		}

		// ...fetch the frame live, bit-identical to what was published...
		rep, _, _, err := cli.FetchFrame(want)
		if err != nil {
			t.Fatalf("live fetch %d: %v", want, err)
		}
		wantEnc, err := ring.EncodedFrame(want)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rep.AppendBinary(nil), wantEnc) {
			t.Errorf("live frame %d not bit-identical", want)
		}

		// ...and server-render it, matching a local render exactly.
		remoteFB, _, _, err := cli.Render(remote.RenderParams{Frame: want, Width: 64, Height: 64, ViewDir: viewDir})
		if err != nil {
			t.Fatalf("live render %d: %v", want, err)
		}
		tf, err := core.DefaultTF(rep)
		if err != nil {
			t.Fatal(err)
		}
		localFB, _, _, err := core.RenderFrame(rep, tf, 64, 64, viewDir)
		if err != nil {
			t.Fatal(err)
		}
		fbEqual(t, remoteFB, localFB, "in-situ server render")

		sink.ack <- struct{}{} // let the simulation advance
	}
	if err := stream.Wait(); err != nil {
		t.Fatalf("stream: %v", err)
	}
	if n, err := cli.NumFrames(); err != nil || n != nFrames {
		t.Errorf("final frame count %d (err %v), want %d", n, err, nFrames)
	}
}

// TestFieldStreamSink: StreamSolve publishes line-cloud frames into
// the same sink interface, so a field solve is live-monitorable over
// the identical protocol.
func TestFieldStreamSink(t *testing.T) {
	ring, err := remote.NewLiveRing(4)
	if err != nil {
		t.Fatal(err)
	}
	fp := core.NewFieldPipeline(6, 20)
	stream, err := fp.StreamSolve(context.Background(), core.FieldStreamOptions{
		Frames:          2,
		PeriodsPerFrame: 2,
		Sink:            ring,
		SinkVolumeRes:   8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := stream.Wait(); err != nil {
		t.Fatal(err)
	}
	if n := ring.NumFrames(); n != 2 {
		t.Fatalf("ring holds %d frames, want 2", n)
	}
	srv, err := remote.NewService("127.0.0.1:0", ring)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli := dialRemote(t, srv.Addr())
	for i := 0; i < 2; i++ {
		rep, _, _, err := cli.FetchFrame(i)
		if err != nil {
			t.Fatalf("fetch %d: %v", i, err)
		}
		if rep.NumPoints() == 0 {
			t.Errorf("frame %d: empty line cloud", i)
		}
		if len(rep.Points) != len(rep.PointDensity) || len(rep.Points) != len(rep.OrigIndex) {
			t.Errorf("frame %d: inconsistent line cloud arrays", i)
		}
		// Line-cloud frames must be renderable — locally and
		// server-side — whatever the raw field units were (DefaultTF
		// needs Threshold/MaxLeafD inside [0,1]).
		tf, err := core.DefaultTF(rep)
		if err != nil {
			t.Fatalf("frame %d: DefaultTF on line cloud: %v", i, err)
		}
		localFB, _, _, err := core.RenderFrame(rep, tf, 48, 48, vec.New(0.8, 0.45, 0.9))
		if err != nil {
			t.Fatalf("frame %d: local render of line cloud: %v", i, err)
		}
		remoteFB, _, _, err := cli.Render(remote.RenderParams{Frame: i, Width: 48, Height: 48, ViewDir: vec.New(0.8, 0.45, 0.9)})
		if err != nil {
			t.Fatalf("frame %d: server render of line cloud: %v", i, err)
		}
		fbEqual(t, remoteFB, localFB, "line-cloud render")
	}
}
