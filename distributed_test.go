package repro

import (
	"bufio"
	"bytes"
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// TestVizworkerTwoProcessRoundTrip is the end-to-end acceptance test
// of distributed stage execution: it builds the real cmd/vizworker
// binary, runs it as a second OS process, and drives StreamFrames with
// ExtractAddr across the process boundary — the frames must come back
// bit-identical to an all-local run of the same configuration.
func TestVizworkerTwoProcessRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("two-process test builds cmd/vizworker; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "vizworker")
	build := exec.Command("go", "build", "-o", bin, "./cmd/vizworker")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building cmd/vizworker: %v\n%s", err, out)
	}

	worker := exec.Command(bin, "-addr", "127.0.0.1:0")
	stdout, err := worker.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := worker.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		worker.Process.Kill()
		worker.Wait()
	})

	// Scrape the serving line for the kernel-chosen port.
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.LastIndex(line, " on "); strings.HasPrefix(line, "vizworker: serving") && i >= 0 {
				fields := strings.Fields(line[i+4:])
				if len(fields) > 0 {
					addrCh <- fields[0]
					return
				}
			}
		}
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(30 * time.Second):
		t.Fatal("vizworker never announced its address")
	}

	pipelineFor := func() (*core.ParticlePipeline, core.FrameSource, error) {
		pp := core.NewParticlePipeline(5000)
		pp.Extract.VolumeRes = 12
		pp.Extract.Workers = 2 // pin: splat slab boundaries must match across processes
		pp.Tree.Workers = 2
		sim, err := pp.NewSim()
		if err != nil {
			return nil, nil, err
		}
		return pp, core.SimSource(sim, 3, 2), nil
	}

	pp, src, err := pipelineFor()
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	s := pp.StreamFrames(context.Background(), src, core.StreamOptions{ExtractWorkers: 2})
	for r := range s.Out {
		want = append(want, r.Rep.AppendBinary(nil))
	}
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}

	pp, src, err = pipelineFor()
	if err != nil {
		t.Fatal(err)
	}
	s = pp.StreamFrames(context.Background(), src, core.StreamOptions{
		ExtractAddr:    addr,
		ExtractWorkers: 2,
	})
	got := 0
	for r := range s.Out {
		if !bytes.Equal(r.Rep.AppendBinary(nil), want[r.Index]) {
			t.Errorf("frame %d: cross-process extraction not bit-identical", r.Index)
		}
		got++
	}
	if err := s.Wait(); err != nil {
		t.Fatal(err)
	}
	if got != len(want) {
		t.Fatalf("distributed run emitted %d frames, want %d", got, len(want))
	}
}
